//! Deterministic, seed-driven fault injection for the fabric.
//!
//! A [`FaultPlan`] describes how an unreliable fabric misbehaves: per-link
//! probabilities of dropping, duplicating, or delaying a message, targeted
//! one-shot faults ("drop the Nth reply on link (s, d)"), and link outage
//! windows. The plan is *deterministic*: the decision for a message depends
//! only on the plan seed, the link, and how many messages that link has
//! carried — never on cross-link interleaving or wall-clock state — so the
//! same plan replays identically under any schedule exploration order and
//! any sweep thread count.
//!
//! Faults model the *last link* into the destination NIC: a dropped
//! message still consumes source-side injection bandwidth, a duplicated
//! message arrives twice, a delayed message arrives late but in-order
//! guarantees between other pairs are untouched.

use crate::tables::LinkTable;
use cenju4_des::{SimTime, SplitMix64};
use cenju4_directory::NodeId;

/// Coarse classification of a wire message, used to target faults at a
/// protocol-meaningful slice of the traffic ("drop a reply", "duplicate an
/// invalidation") without the network crate knowing protocol types.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum WireClass {
    /// Master → home coherence requests (and home → slave forwards).
    Request,
    /// Home → master grants and slave → home replies.
    Reply,
    /// Invalidations and updates fanned out to sharers.
    Invalidation,
    /// Reply-less writebacks.
    WriteBack,
    /// Slave replies travelling through the gather tree.
    GatherReply,
    /// Anything else (user-level messages, test traffic).
    Other,
}

/// What an injected fault does to the affected message.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum FaultKind {
    /// The message never arrives.
    Drop,
    /// The message arrives, and a second copy arrives `after_ns` later —
    /// a spurious retransmission.
    Duplicate {
        /// Extra delay of the duplicate relative to the original.
        after_ns: u64,
    },
    /// The message arrives `by_ns` late.
    Delay {
        /// Added latency.
        by_ns: u64,
    },
}

/// A targeted fault that fires exactly once: the `nth` message matching
/// the link and class filters suffers `kind`.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub struct OneShotFault {
    /// Restrict to one (src, dst) link, or `None` for any link.
    pub link: Option<(NodeId, NodeId)>,
    /// Restrict to one message class, or `None` for any class.
    pub class: Option<WireClass>,
    /// 1-based index among matching messages (`nth == 1` hits the first).
    pub nth: u64,
    /// The fault applied to that message.
    pub kind: FaultKind,
}

/// A link outage: every message on (src, dst) injected in
/// `[from_ns, until_ns)` is dropped.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub struct LinkDown {
    /// Sending side of the dead link.
    pub src: NodeId,
    /// Receiving side of the dead link.
    pub dst: NodeId,
    /// Start of the outage window (inclusive, ns).
    pub from_ns: u64,
    /// End of the outage window (exclusive, ns).
    pub until_ns: u64,
}

/// A node outage: every message into *or* out of `node` injected in
/// `[from_ns, until_ns)` is dropped — the node has gone silent. Use
/// `until_ns == u64::MAX` for a permanent kill.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub struct NodeDown {
    /// The silenced node.
    pub node: NodeId,
    /// Start of the outage window (inclusive, ns).
    pub from_ns: u64,
    /// End of the outage window (exclusive, ns); `u64::MAX` kills the
    /// node for good.
    pub until_ns: u64,
}

/// A complete description of how the fabric misbehaves.
///
/// [`FaultPlan::none`] (also the `Default`) is the lossless fabric: no
/// probabilistic faults, no one-shots, no outages. The engine treats a
/// plan for which [`FaultPlan::is_none`] holds as "fabric is provably
/// lossless" and elides the whole recovery layer.
///
/// # Examples
///
/// ```
/// use cenju4_network::FaultPlan;
///
/// assert!(FaultPlan::none().is_none());
/// assert!(!FaultPlan::random(42, 10).is_none());
/// ```
#[derive(Clone, Debug, Default, PartialEq, Eq, Hash)]
pub struct FaultPlan {
    /// Seed for the probabilistic decisions.
    pub seed: u64,
    /// Per-message drop probability in permille (0..=1000).
    pub drop_permille: u16,
    /// Per-message duplication probability in permille.
    pub dup_permille: u16,
    /// Per-message delay probability in permille.
    pub delay_permille: u16,
    /// Maximum extra latency of a probabilistic delay (ns); the actual
    /// delay is drawn uniformly from `[1, max_delay_ns]`.
    pub max_delay_ns: u64,
    /// Targeted one-shot faults.
    pub one_shot: Vec<OneShotFault>,
    /// Link outage windows.
    pub down: Vec<LinkDown>,
    /// Node outage windows: every wire touching the node is silenced.
    pub node_down: Vec<NodeDown>,
}

impl FaultPlan {
    /// The lossless fabric: no faults of any kind.
    pub fn none() -> Self {
        FaultPlan::default()
    }

    /// Whether this plan can never inject a fault.
    pub fn is_none(&self) -> bool {
        self.drop_permille == 0
            && self.dup_permille == 0
            && self.delay_permille == 0
            && self.one_shot.is_empty()
            && self.down.is_empty()
            && self.node_down.is_empty()
    }

    /// A purely probabilistic plan: every message is dropped with
    /// probability `drop_permille`/1000, decided by `seed`.
    pub fn random(seed: u64, drop_permille: u16) -> Self {
        FaultPlan {
            seed,
            drop_permille,
            ..FaultPlan::default()
        }
    }

    /// Adds a targeted one-shot fault to the plan.
    pub fn with_one_shot(mut self, fault: OneShotFault) -> Self {
        self.one_shot.push(fault);
        self
    }

    /// Adds a link outage window to the plan.
    pub fn with_link_down(mut self, down: LinkDown) -> Self {
        self.down.push(down);
        self
    }

    /// Adds a node outage window to the plan. `until_ns == u64::MAX`
    /// kills the node permanently.
    pub fn with_node_down(mut self, down: NodeDown) -> Self {
        self.node_down.push(down);
        self
    }

    /// Whether `node` is inside one of the plan's outage windows at
    /// `now_ns`. This is the deterministic ground truth the failure
    /// detector's heartbeat probes consult: a real ping would be dropped
    /// exactly when this returns `true`, so computing the answer directly
    /// adds no fabric traffic and stays schedule-independent.
    pub fn node_down_at(&self, now_ns: u64, node: NodeId) -> bool {
        self.node_down
            .iter()
            .any(|d| d.node == node && d.from_ns <= now_ns && now_ns < d.until_ns)
    }

    /// When `node`, down at `now_ns`, next comes back up — the end of the
    /// containing outage window, skipping forward over any window that
    /// starts exactly where the previous one ends. `None` if the node is
    /// dead for good (a `u64::MAX` window).
    pub fn node_revives_at(&self, now_ns: u64, node: NodeId) -> Option<u64> {
        let mut t = now_ns;
        loop {
            let Some(d) = self
                .node_down
                .iter()
                .find(|d| d.node == node && d.from_ns <= t && t < d.until_ns)
            else {
                return Some(t);
            };
            if d.until_ns == u64::MAX {
                return None;
            }
            t = d.until_ns;
        }
    }
}

/// Record of one injected fault, for statistics and observers.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct FaultEvent {
    /// Injection time of the afflicted message.
    pub at: SimTime,
    /// Sending node.
    pub src: NodeId,
    /// Intended receiving node.
    pub dst: NodeId,
    /// Class of the afflicted message.
    pub class: WireClass,
    /// What happened to it.
    pub kind: FaultKind,
}

/// Mutable decision state for a [`FaultPlan`]: per-link message counters
/// and per-one-shot hit counters. Owned by the fabric; reset whenever the
/// plan is replaced.
#[derive(Clone, Debug)]
pub(crate) struct FaultState {
    plan: FaultPlan,
    /// Messages seen so far per (src, dst) link — the deterministic
    /// per-link sequence the probabilistic decisions key off. A dense
    /// flat table; zero-sized when the plan is inert (`decide` bails
    /// before touching it).
    link_seen: LinkTable<u64>,
    /// Matching messages seen so far per one-shot fault.
    one_shot_seen: Vec<u64>,
}

impl FaultState {
    /// The inert state of a lossless fabric: no table is allocated.
    pub(crate) fn empty() -> Self {
        FaultState {
            plan: FaultPlan::none(),
            link_seen: LinkTable::new(0),
            one_shot_seen: Vec::new(),
        }
    }

    pub(crate) fn new(plan: FaultPlan, nodes: usize) -> Self {
        let shots = plan.one_shot.len();
        // n² u64 slots: 8 MB at the 1024-node maximum, allocated only
        // when a plan can actually fault something.
        let table_nodes = if plan.is_none() { 0 } else { nodes };
        FaultState {
            plan,
            link_seen: LinkTable::new(table_nodes),
            one_shot_seen: vec![0; shots],
        }
    }

    pub(crate) fn plan(&self) -> &FaultPlan {
        &self.plan
    }

    pub(crate) fn is_inert(&self) -> bool {
        self.plan.is_none()
    }

    /// Decides the fate of one message. One-shot faults take precedence
    /// over outage windows, which take precedence over the probabilistic
    /// roll; at most one fault ever applies to a message.
    pub(crate) fn decide(
        &mut self,
        now: SimTime,
        src: NodeId,
        dst: NodeId,
        class: WireClass,
    ) -> Option<FaultKind> {
        if self.plan.is_none() {
            return None;
        }
        let count = {
            let c = self.link_seen.get_mut(src, dst);
            *c += 1;
            *c
        };
        for (i, shot) in self.plan.one_shot.iter().enumerate() {
            if let Some(link) = shot.link {
                if link != (src, dst) {
                    continue;
                }
            }
            if let Some(c) = shot.class {
                if c != class {
                    continue;
                }
            }
            self.one_shot_seen[i] += 1;
            if self.one_shot_seen[i] == shot.nth {
                return Some(shot.kind);
            }
        }
        {
            let t = now.as_ns();
            if self.plan.node_down_at(t, src) || self.plan.node_down_at(t, dst) {
                return Some(FaultKind::Drop);
            }
        }
        for d in &self.plan.down {
            if d.src == src && d.dst == dst {
                let t = now.as_ns();
                if d.from_ns <= t && t < d.until_ns {
                    return Some(FaultKind::Drop);
                }
            }
        }
        let total = self.plan.drop_permille as u64
            + self.plan.dup_permille as u64
            + self.plan.delay_permille as u64;
        if total == 0 {
            return None;
        }
        // One stream per (seed, link, per-link count): the decision is a
        // pure function of those inputs, independent of how traffic on
        // other links interleaves with this one.
        let mut rng = SplitMix64::new(
            self.plan
                .seed
                .wrapping_mul(0x9E37_79B9_7F4A_7C15)
                .wrapping_add((src.index() as u64) << 32)
                .wrapping_add((dst.index() as u64) << 16)
                .wrapping_add(count),
        );
        let roll = rng.next_below(1000);
        if roll < self.plan.drop_permille as u64 {
            Some(FaultKind::Drop)
        } else if roll < (self.plan.drop_permille + self.plan.dup_permille) as u64 {
            Some(FaultKind::Duplicate { after_ns: 0 })
        } else if roll < total {
            let by_ns = 1 + rng.next_below(self.plan.max_delay_ns.max(1));
            Some(FaultKind::Delay { by_ns })
        } else {
            None
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn n(i: u16) -> NodeId {
        NodeId::new(i)
    }

    #[test]
    fn none_plan_is_inert() {
        let mut st = FaultState::new(FaultPlan::none(), 16);
        for i in 0..100 {
            assert_eq!(
                st.decide(SimTime::from_ns(i), n(0), n(1), WireClass::Request),
                None
            );
        }
    }

    /// The flat `LinkTable` per-link counter must be observationally
    /// identical to the `HashMap<(src, dst), u64>` it replaced: for a
    /// random interleaved traffic stream, every probabilistic decision
    /// must equal the one computed from a reference map-keyed count fed
    /// through the same pure (seed, link, count) roll.
    #[test]
    fn flat_counts_match_map_keyed_reference() {
        use cenju4_des::SplitMix64;
        use std::collections::HashMap;

        let plan = FaultPlan {
            seed: 0xFA_1175,
            drop_permille: 120,
            dup_permille: 90,
            delay_permille: 60,
            max_delay_ns: 500,
            one_shot: Vec::new(),
            down: Vec::new(),
            node_down: Vec::new(),
        };
        let nodes = 64u16;
        let mut st = FaultState::new(plan.clone(), nodes as usize);
        let mut reference: HashMap<(NodeId, NodeId), u64> = HashMap::new();
        let mut rng = SplitMix64::new(0x0DD_BA11);
        for i in 0..20_000u64 {
            let src = n(rng.next_below(nodes as u64) as u16);
            let dst = n(rng.next_below(nodes as u64) as u16);
            if src == dst {
                continue;
            }
            let got = st.decide(SimTime::from_ns(i), src, dst, WireClass::Other);
            let count = reference.entry((src, dst)).or_insert(0);
            *count += 1;
            // The same pure roll decide() documents: one stream per
            // (seed, link, per-link count).
            let mut roll_rng = SplitMix64::new(
                plan.seed
                    .wrapping_mul(0x9E37_79B9_7F4A_7C15)
                    .wrapping_add((src.index() as u64) << 32)
                    .wrapping_add((dst.index() as u64) << 16)
                    .wrapping_add(*count),
            );
            let roll = roll_rng.next_below(1000);
            let want = if roll < 120 {
                Some(FaultKind::Drop)
            } else if roll < 210 {
                Some(FaultKind::Duplicate { after_ns: 0 })
            } else if roll < 270 {
                Some(FaultKind::Delay {
                    by_ns: 1 + roll_rng.next_below(500),
                })
            } else {
                None
            };
            assert_eq!(got, want, "link ({src:?} -> {dst:?}) event {i}");
        }
    }

    #[test]
    fn decisions_are_deterministic_per_link() {
        let mut a = FaultState::new(FaultPlan::random(7, 300), 16);
        let mut b = FaultState::new(FaultPlan::random(7, 300), 16);
        // Interleave unrelated traffic on another link in `b` only: the
        // (0 -> 1) decisions must be identical anyway.
        let mut da = Vec::new();
        let mut db = Vec::new();
        for i in 0..64u64 {
            da.push(a.decide(SimTime::from_ns(i), n(0), n(1), WireClass::Reply));
            let _ = b.decide(SimTime::from_ns(i), n(2), n(3), WireClass::Reply);
            db.push(b.decide(SimTime::from_ns(i), n(0), n(1), WireClass::Reply));
        }
        assert_eq!(da, db);
        assert!(da.iter().any(|d| d.is_some()), "300 permille never fired");
        assert!(da.iter().any(|d| d.is_none()), "300 permille always fired");
    }

    #[test]
    fn one_shot_hits_exactly_the_nth_match() {
        let plan = FaultPlan::none().with_one_shot(OneShotFault {
            link: Some((n(0), n(1))),
            class: Some(WireClass::Reply),
            nth: 2,
            kind: FaultKind::Drop,
        });
        let mut st = FaultState::new(plan, 16);
        // Non-matching class and link traffic does not advance the count.
        assert_eq!(
            st.decide(SimTime::ZERO, n(0), n(1), WireClass::Request),
            None
        );
        assert_eq!(st.decide(SimTime::ZERO, n(2), n(1), WireClass::Reply), None);
        assert_eq!(st.decide(SimTime::ZERO, n(0), n(1), WireClass::Reply), None);
        assert_eq!(
            st.decide(SimTime::ZERO, n(0), n(1), WireClass::Reply),
            Some(FaultKind::Drop)
        );
        // ...and only once.
        assert_eq!(st.decide(SimTime::ZERO, n(0), n(1), WireClass::Reply), None);
    }

    #[test]
    fn link_down_window_drops_inside_only() {
        let plan = FaultPlan::none().with_link_down(LinkDown {
            src: n(3),
            dst: n(0),
            from_ns: 100,
            until_ns: 200,
        });
        let mut st = FaultState::new(plan, 16);
        assert_eq!(
            st.decide(SimTime::from_ns(99), n(3), n(0), WireClass::Other),
            None
        );
        assert_eq!(
            st.decide(SimTime::from_ns(100), n(3), n(0), WireClass::Other),
            Some(FaultKind::Drop)
        );
        assert_eq!(
            st.decide(SimTime::from_ns(199), n(3), n(0), WireClass::Other),
            Some(FaultKind::Drop)
        );
        assert_eq!(
            st.decide(SimTime::from_ns(200), n(3), n(0), WireClass::Other),
            None
        );
        // Other links are unaffected even inside the window.
        assert_eq!(
            st.decide(SimTime::from_ns(150), n(0), n(3), WireClass::Other),
            None
        );
    }

    #[test]
    fn node_down_window_silences_every_wire_touching_the_node() {
        let plan = FaultPlan::none().with_node_down(NodeDown {
            node: n(2),
            from_ns: 100,
            until_ns: 200,
        });
        let mut st = FaultState::new(plan, 16);
        // Before the window: traffic flows.
        assert_eq!(
            st.decide(SimTime::from_ns(99), n(0), n(2), WireClass::Request),
            None
        );
        // Inside: both directions die, every class.
        assert_eq!(
            st.decide(SimTime::from_ns(100), n(0), n(2), WireClass::Request),
            Some(FaultKind::Drop)
        );
        assert_eq!(
            st.decide(SimTime::from_ns(150), n(2), n(0), WireClass::Reply),
            Some(FaultKind::Drop)
        );
        assert_eq!(
            st.decide(SimTime::from_ns(199), n(1), n(2), WireClass::GatherReply),
            Some(FaultKind::Drop)
        );
        // Wires not touching the node are unaffected inside the window.
        assert_eq!(
            st.decide(SimTime::from_ns(150), n(0), n(1), WireClass::Request),
            None
        );
        // After the window: revived.
        assert_eq!(
            st.decide(SimTime::from_ns(200), n(0), n(2), WireClass::Request),
            None
        );
    }

    #[test]
    fn permanent_kill_never_revives() {
        let plan = FaultPlan::none().with_node_down(NodeDown {
            node: n(1),
            from_ns: 50,
            until_ns: u64::MAX,
        });
        assert!(!plan.is_none(), "a node-down plan must arm the fabric");
        assert!(!plan.node_down_at(49, n(1)));
        assert!(plan.node_down_at(50, n(1)));
        assert!(plan.node_down_at(u64::MAX - 1, n(1)));
        assert_eq!(plan.node_revives_at(60, n(1)), None);
    }

    #[test]
    fn revival_query_skips_abutting_windows() {
        let plan = FaultPlan::none()
            .with_node_down(NodeDown {
                node: n(3),
                from_ns: 100,
                until_ns: 200,
            })
            .with_node_down(NodeDown {
                node: n(3),
                from_ns: 200,
                until_ns: 300,
            });
        assert_eq!(plan.node_revives_at(150, n(3)), Some(300));
        assert_eq!(plan.node_revives_at(250, n(3)), Some(300));
        // Already up: the query answers "now".
        assert_eq!(plan.node_revives_at(300, n(3)), Some(300));
    }

    #[test]
    fn drop_rate_roughly_matches_permille() {
        let mut st = FaultState::new(FaultPlan::random(1, 100), 16);
        let trials = 10_000;
        let drops = (0..trials)
            .filter(|&i| {
                st.decide(SimTime::from_ns(i), n(0), n(1), WireClass::Other)
                    .is_some()
            })
            .count();
        let rate = drops as f64 / trials as f64;
        assert!(
            (rate - 0.1).abs() < 0.02,
            "drop rate {rate} too far from 0.1"
        );
    }
}
