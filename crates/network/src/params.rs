//! Network timing parameters, calibrated against Table 2 of the paper.

use cenju4_des::Duration;

/// Whether the fabric's multicast/gather hardware is used.
///
/// The paper evaluates the machine both with the hardware functions and —
/// using a logic-level simulator — without them (Figure 10's upper curves).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq, Hash)]
pub enum MulticastMode {
    /// In-switch replication and in-switch reply gathering.
    #[default]
    Hardware,
    /// The source sends one singlecast message per destination and every
    /// reply travels all the way back: the configuration the paper
    /// estimates at 184 µs for a 1024-sharer invalidation.
    SinglecastEmulation,
}

/// Timing parameters of the fabric.
///
/// The defaults are fitted to Table 2 of the paper (see DESIGN.md):
/// a one-way message costs `inject_latency + stages·hop_latency +
/// eject_latency` when uncontended, which with the defaults is
/// `280 + 130·stages` ns — exactly the increment Table 2 shows between the
/// 2-, 4- and 6-stage columns for shared-remote-clean loads.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub struct NetParams {
    /// Source-side NIC latency added to every message (ns).
    pub inject_latency: Duration,
    /// Source-side NIC serialization: minimum spacing between consecutive
    /// messages injected by one node (ns). Larger than `inject_latency`'s
    /// pipelined contribution; this is what makes the singlecast
    /// invalidation storm of Figure 10 linear in the sharer count.
    pub inject_occupancy: Duration,
    /// Destination-side NIC latency (ns).
    pub eject_latency: Duration,
    /// Destination-side NIC serialization between consecutive ejects (ns).
    pub eject_occupancy: Duration,
    /// Per-stage latency of a header-only message (switch + link), ns.
    pub hop_latency: Duration,
    /// Extra per-stage latency for a message carrying a 128-byte cache
    /// line (virtual cut-through tail), ns.
    pub data_hop_extra: Duration,
    /// Output-port occupancy per message (serialization under contention), ns.
    pub port_occupancy: Duration,
    /// Extra output-port occupancy for a data-carrying message, ns.
    pub data_port_extra: Duration,
    /// Serialization between successive replicated copies of a multicast
    /// inside one switch, ns.
    pub copy_serialization: Duration,
    /// Fixed setup cost of a hardware multicast+gather transaction
    /// (building the destination-spec header, allocating the gather
    /// identifier). This is why Figure 10 jumps once the sharer count
    /// exceeds two, and why the paper suggests singlecasting small
    /// fan-outs.
    pub multicast_setup: Duration,
    /// Time to fold one arriving gathered reply into the gather-table
    /// entry, ns.
    pub gather_merge: Duration,
    /// Bulk (message-passing) bandwidth in bytes per microsecond. The
    /// paper measured 169 MB/s = 169 B/µs end to end with the MPI
    /// library on a 128-node machine.
    pub bulk_bytes_per_us: u64,
    /// Whether multicast/gather hardware is enabled.
    pub multicast: MulticastMode,
}

impl Default for NetParams {
    fn default() -> Self {
        NetParams {
            inject_latency: Duration::from_ns(140),
            inject_occupancy: Duration::from_ns(175),
            eject_latency: Duration::from_ns(140),
            eject_occupancy: Duration::from_ns(175),
            hop_latency: Duration::from_ns(130),
            data_hop_extra: Duration::from_ns(10),
            port_occupancy: Duration::from_ns(40),
            data_port_extra: Duration::from_ns(40),
            copy_serialization: Duration::from_ns(75),
            gather_merge: Duration::from_ns(20),
            multicast_setup: Duration::from_ns(400),
            bulk_bytes_per_us: 169,
            multicast: MulticastMode::Hardware,
        }
    }
}

impl NetParams {
    /// The default parameters with multicast/gather hardware disabled.
    pub fn without_multicast() -> Self {
        NetParams {
            multicast: MulticastMode::SinglecastEmulation,
            ..NetParams::default()
        }
    }

    /// The uncontended one-way latency of a message across `stages`
    /// stages: `inject + stages·hop (+ stages·data extra) + eject`.
    pub fn one_way(&self, stages: u32, data: bool) -> Duration {
        let mut per_hop = self.hop_latency;
        if data {
            per_hop += self.data_hop_extra;
        }
        self.inject_latency + per_hop * stages as u64 + self.eject_latency
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_one_way_matches_table2_fit() {
        let p = NetParams::default();
        // 280 + 130·s, the slope Table 2 exhibits for remote clean loads.
        assert_eq!(p.one_way(2, false).as_ns(), 540);
        assert_eq!(p.one_way(4, false).as_ns(), 800);
        assert_eq!(p.one_way(6, false).as_ns(), 1060);
    }

    #[test]
    fn data_messages_cost_more_per_stage() {
        let p = NetParams::default();
        assert_eq!(p.one_way(6, true).as_ns(), 280 + 6 * 140);
        assert!(p.one_way(4, true) > p.one_way(4, false));
    }

    #[test]
    fn without_multicast_flips_only_the_mode() {
        let a = NetParams::default();
        let b = NetParams::without_multicast();
        assert_eq!(b.multicast, MulticastMode::SinglecastEmulation);
        assert_eq!(a.hop_latency, b.hop_latency);
    }
}
