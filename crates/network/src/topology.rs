//! Geometry of the radix-4 butterfly: switch labels, paths, and the
//! (mask, value) constraints switches evaluate for multicast and gathering.
//!
//! Ports are addressed by `2·stages`-bit strings read as base-4 digits,
//! most significant digit first. A message from `src` to `dst` corrects one
//! digit per stage: after stage `j` the top `j+1` digits equal `dst`'s.
//! The switch crossed at stage `j` is therefore identified by `dst`'s top
//! `j` digits (the *prefix*) and `src`'s bottom `stages-1-j` digits (the
//! *suffix*); the input port is `src`'s digit `j` and the output port is
//! `dst`'s digit `j`. Both the unique path and the in-order guarantee
//! follow directly.

use cenju4_directory::SystemSize;

/// A switch location: its stage and its label (the `stages-1` digits that
/// identify it within the stage).
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub struct SwitchId {
    /// Stage index, 0 at the injection side.
    pub stage: u32,
    /// Packed label: `prefix · 4^(stages-1-stage) + suffix`.
    pub label: u32,
}

/// The network geometry for one machine size.
///
/// # Examples
///
/// ```
/// use cenju4_directory::SystemSize;
/// use cenju4_network::Topology;
///
/// let topo = Topology::new(SystemSize::new(1024)?);
/// assert_eq!(topo.stages(), 6);
/// assert_eq!(topo.ports(), 4096);
/// assert_eq!(topo.switches_per_stage(), 1024);
/// # Ok::<(), cenju4_directory::SystemSizeError>(())
/// ```
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Topology {
    sys: SystemSize,
    stages: u32,
}

impl Topology {
    /// Builds the geometry for a machine.
    pub fn new(sys: SystemSize) -> Self {
        Topology {
            sys,
            stages: sys.stages(),
        }
    }

    /// The machine this topology serves.
    #[inline]
    pub fn system(&self) -> SystemSize {
        self.sys
    }

    /// Number of switch stages.
    #[inline]
    pub fn stages(&self) -> u32 {
        self.stages
    }

    /// Number of endpoint ports (`4^stages`).
    #[inline]
    pub fn ports(&self) -> u32 {
        1 << (2 * self.stages)
    }

    /// Number of switches in each stage (`ports / 4`).
    #[inline]
    pub fn switches_per_stage(&self) -> u32 {
        self.ports() / 4
    }

    /// The 2-bit digit of `addr` at position `j`, most significant first.
    #[inline]
    pub fn digit(&self, addr: u32, j: u32) -> u8 {
        debug_assert!(j < self.stages);
        ((addr >> (2 * (self.stages - 1 - j))) & 0b11) as u8
    }

    /// The switch crossed at stage `j` on the unique path `src → dst`.
    pub fn switch_on_path(&self, src: u32, dst: u32, j: u32) -> SwitchId {
        SwitchId {
            stage: j,
            label: self.label(self.prefix(dst, j), self.suffix(src, j), j),
        }
    }

    /// `dst`'s top `j` digits (the part of the label fixed by routing).
    #[inline]
    pub fn prefix(&self, dst: u32, j: u32) -> u32 {
        dst >> (2 * (self.stages - j))
    }

    /// `src`'s bottom `stages-1-j` digits.
    #[inline]
    pub fn suffix(&self, src: u32, j: u32) -> u32 {
        src & ((1 << (2 * (self.stages - 1 - j))) - 1)
    }

    /// Packs a (prefix, suffix) pair into a label at stage `j`.
    #[inline]
    pub fn label(&self, prefix: u32, suffix: u32, j: u32) -> u32 {
        (prefix << (2 * (self.stages - 1 - j))) | suffix
    }

    /// The input port a message from `src` uses at stage `j`.
    #[inline]
    pub fn input_port(&self, src: u32, j: u32) -> u8 {
        self.digit(src, j)
    }

    /// The output port toward `dst` at stage `j`.
    #[inline]
    pub fn output_port(&self, dst: u32, j: u32) -> u8 {
        self.digit(dst, j)
    }

    /// The (mask, value) constraint over **destination** node numbers for
    /// output port `p` of the stage-`j` switch whose routing prefix is
    /// `prefix`: destinations reachable through that port are exactly the
    /// addresses whose top `j+1` digits are `prefix·4 + p`.
    pub fn dest_constraint(&self, prefix: u32, j: u32, p: u8) -> (u32, u32) {
        let shift = 2 * (self.stages - 1 - j);
        let mask = (((1u64 << (2 * (j + 1))) - 1) as u32) << shift;
        let value = (((prefix << 2) | p as u32) << shift) & mask;
        (mask, value)
    }

    /// The (mask, value) constraint over **source** node numbers for input
    /// port `p` of the stage-`j` switch with source suffix `suffix`:
    /// replies entering that port come from sources whose digit `j` is `p`
    /// and whose bottom digits equal `suffix`.
    pub fn source_constraint(&self, suffix: u32, j: u32, p: u8) -> (u32, u32) {
        let shift = 2 * (self.stages - 1 - j);
        let mask = ((1u64 << (2 * (self.stages - j))) - 1) as u32;
        let value = ((p as u32) << shift) | suffix;
        (mask, value)
    }

    /// The endpoint address reached by leaving the final stage through
    /// output port `p` of the switch with prefix `prefix`.
    #[inline]
    pub fn endpoint(&self, prefix: u32, p: u8) -> u32 {
        (prefix << 2) | p as u32
    }

    /// Switch hops on the unique path `src → dst`: a remote message
    /// crosses every stage of the butterfly (there are no partial
    /// routes), a node-local hand-off crosses none. Instrumentation uses
    /// this to annotate per-message fabric cost.
    #[inline]
    pub fn hop_count(&self, src: u32, dst: u32) -> u32 {
        if src == dst {
            0
        } else {
            self.stages
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn topo(nodes: u16) -> Topology {
        Topology::new(SystemSize::new(nodes).unwrap())
    }

    #[test]
    fn digits_msb_first() {
        let t = topo(1024); // 6 stages, 12-bit addresses
        let addr = 0b00_10_01_11_00_10u32;
        assert_eq!(t.digit(addr, 0), 0b00);
        assert_eq!(t.digit(addr, 1), 0b10);
        assert_eq!(t.digit(addr, 2), 0b01);
        assert_eq!(t.digit(addr, 3), 0b11);
        assert_eq!(t.digit(addr, 4), 0b00);
        assert_eq!(t.digit(addr, 5), 0b10);
    }

    #[test]
    fn path_is_consistent_chain() {
        // Walking the path must form a connected chain: the output of the
        // stage-j switch must be the input of the stage-j+1 switch.
        let t = topo(256); // 4 stages
        for (src, dst) in [(0u32, 255u32), (17, 200), (255, 0), (5, 5), (123, 64)] {
            // Simulate position correction digit by digit.
            let mut pos = src;
            for j in 0..t.stages() {
                let sw = t.switch_on_path(src, dst, j);
                // The switch must contain the current position: a switch at
                // stage j groups the 4 addresses differing only in digit j.
                let shift = 2 * (t.stages() - 1 - j);
                // Label = the position with digit j removed.
                let expect_label = ((pos >> (shift + 2)) << shift) | (pos & ((1 << shift) - 1));
                assert_eq!(sw.label, expect_label, "stage {j} src {src} dst {dst}");
                // Correct digit j.
                let d = t.digit(dst, j) as u32;
                pos = (pos & !(0b11 << shift)) | (d << shift);
            }
            assert_eq!(pos, dst, "path must terminate at the destination");
        }
    }

    #[test]
    fn unique_path_in_order_guarantee() {
        // Two messages src->dst cross exactly the same switches.
        let t = topo(1024);
        for j in 0..t.stages() {
            assert_eq!(t.switch_on_path(999, 3, j), t.switch_on_path(999, 3, j),);
        }
    }

    #[test]
    fn dest_constraint_describes_reachable_set() {
        let t = topo(256);
        let (src, dst) = (100u32, 201u32);
        for j in 0..t.stages() {
            let prefix = t.prefix(dst, j);
            let p = t.output_port(dst, j);
            let (mask, value) = t.dest_constraint(prefix, j, p);
            // dst itself must satisfy its own constraint.
            assert_eq!(dst & mask, value, "stage {j}");
            // A destination differing in the first digit must not.
            let other = dst ^ (0b11 << (2 * (t.stages() - 1)));
            if j == 0 {
                assert_ne!(other & mask, value);
            }
            let _ = src;
        }
    }

    #[test]
    fn source_constraint_describes_entering_replies() {
        let t = topo(256);
        let (slave, home) = (77u32, 130u32);
        for j in 0..t.stages() {
            let suffix = t.suffix(slave, j);
            let p = t.input_port(slave, j);
            let (mask, value) = t.source_constraint(suffix, j, p);
            assert_eq!(slave & mask, value & mask, "stage {j}");
            let _ = home;
        }
    }

    #[test]
    fn paths_to_same_dest_merge() {
        // Replies from sources sharing low digits converge on the same
        // switches: at the final stage every reply to `home` crosses the
        // switch whose prefix is home's top digits.
        let t = topo(256);
        let home = 9u32;
        let last = t.stages() - 1;
        let sw_a = t.switch_on_path(100, home, last);
        let sw_b = t.switch_on_path(201, home, last);
        assert_eq!(sw_a, sw_b, "final-stage switch is determined by dest");
    }

    #[test]
    fn endpoint_inverse_of_final_output() {
        let t = topo(1024);
        for dst in [0u32, 5, 1023] {
            let j = t.stages() - 1;
            let prefix = t.prefix(dst, j);
            let p = t.output_port(dst, j);
            assert_eq!(t.endpoint(prefix, p), dst);
        }
    }

    #[test]
    fn small_machine_two_stages() {
        let t = topo(16);
        assert_eq!(t.stages(), 2);
        assert_eq!(t.ports(), 16);
        assert_eq!(t.switches_per_stage(), 4);
        // Full path check on the small machine: enumerate all pairs.
        for src in 0..16u32 {
            for dst in 0..16u32 {
                let mut pos = src;
                for j in 0..2 {
                    let shift = 2 * (1 - j);
                    let d = t.digit(dst, j) as u32;
                    pos = (pos & !(0b11 << shift)) | (d << shift);
                }
                assert_eq!(pos, dst);
            }
        }
    }
}
