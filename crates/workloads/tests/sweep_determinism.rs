//! The parallel sweep must not change results: running the same parameter
//! points on one worker and on many workers has to produce bit-identical
//! [`RunReport`]s, because every point simulates an independent,
//! deterministic engine and the sweep only schedules them.

use cenju4_sim::sweep::sweep_on;
use cenju4_sim::RunReport;
use cenju4_workloads::{runner, AppKind, Variant};

const SCALE: f64 = 0.25;

fn sweep_reports(threads: usize) -> Vec<RunReport> {
    let nodes = [2u16, 4, 8, 16];
    sweep_on(threads, &nodes, |&n| {
        runner::run_workload(AppKind::Cg, Variant::Dsm2, true, n, SCALE).expect("valid node count")
    })
}

#[test]
fn run_reports_identical_at_one_and_many_threads() {
    let one = sweep_reports(1);
    let four = sweep_reports(4);
    assert_eq!(one.len(), four.len());
    for (i, (a, b)) in one.iter().zip(&four).enumerate() {
        assert_eq!(a, b, "point {i} diverged between 1 and 4 threads");
    }
}

#[test]
fn speedups_match_pointwise_speedup() {
    let nodes = [2u16, 4, 8];
    let swept = runner::speedups(AppKind::Bt, Variant::Dsm2, true, &nodes, SCALE).unwrap();
    for (&n, &s) in nodes.iter().zip(&swept) {
        let single = runner::speedup(AppKind::Bt, Variant::Dsm2, true, n, SCALE).unwrap();
        assert_eq!(
            s.to_bits(),
            single.to_bits(),
            "speedup at {n} nodes diverged"
        );
    }
}
