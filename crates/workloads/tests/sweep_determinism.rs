//! The parallel sweep must not change results: running the same parameter
//! points on one worker and on many workers has to produce bit-identical
//! [`RunReport`]s, because every point simulates an independent,
//! deterministic engine and the sweep only schedules them.

use cenju4_sim::prelude::*;
use cenju4_sim::sweep::sweep_on;
use cenju4_workloads::{runner, AppKind, Variant};

const SCALE: f64 = 0.25;

fn sweep_reports(threads: usize) -> Vec<RunReport> {
    let nodes = [2u16, 4, 8, 16];
    sweep_on(threads, &nodes, |&n| {
        runner::run_workload(AppKind::Cg, Variant::Dsm2, true, n, SCALE).expect("valid node count")
    })
}

#[test]
fn run_reports_identical_at_one_and_many_threads() {
    let one = sweep_reports(1);
    let four = sweep_reports(4);
    assert_eq!(one.len(), four.len());
    for (i, (a, b)) in one.iter().zip(&four).enumerate() {
        assert_eq!(a, b, "point {i} diverged between 1 and 4 threads");
    }
}

/// Runs a small cross-node workload on an unreliable fabric with the
/// recovery layer armed, returning the completion report plus the fault
/// and recovery counters.
fn faulty_point(n: u16) -> (usize, u64, u64, u64, u64) {
    let cfg = SystemConfig::builder(n)
        .fault_plan(FaultPlan::random(0xFA57, 30))
        .recovery(RecoveryParams::default())
        .build()
        .expect("valid node count");
    let mut eng = cfg.build();
    let mut completed = 0usize;
    for i in 0..3u32 {
        for node in 0..n {
            let op = if (node as u32 + i).is_multiple_of(2) {
                MemOp::Store
            } else {
                MemOp::Load
            };
            eng.issue(
                eng.now(),
                NodeId::new(node),
                op,
                Addr::new(NodeId::new(0), i),
            );
            completed += eng
                .run()
                .iter()
                .filter(|n| matches!(n, Notification::Completed { .. }))
                .count();
        }
    }
    let s = eng.stats();
    (
        completed,
        s.faults_injected.get(),
        s.retransmits.get(),
        s.link_discards.get(),
        s.gather_reissues.get(),
    )
}

/// The same `FaultPlan` seed must produce bit-identical outcomes — down
/// to the fault-injection and retransmission counters — whether the sweep
/// runs on one worker or four: the plan's decisions depend only on the
/// seed and per-link message counts, never on scheduling.
#[test]
fn fault_injection_is_deterministic_across_sweep_threads() {
    let nodes = [2u16, 4, 8];
    let one = sweep_on(1, &nodes, |&n| faulty_point(n));
    let four = sweep_on(4, &nodes, |&n| faulty_point(n));
    assert_eq!(one, four, "faulty sweep diverged between 1 and 4 threads");
    // The plan actually fired, recovery actually worked: every access
    // graduated despite injected faults at some sweep point.
    assert!(
        one.iter().any(|&(_, faults, ..)| faults > 0),
        "30 permille plan injected nothing: {one:?}"
    );
    for (&n, &(completed, ..)) in nodes.iter().zip(&one) {
        assert_eq!(completed, 3 * n as usize, "lost accesses at {n} nodes");
    }
}

#[test]
fn speedups_match_pointwise_speedup() {
    let nodes = [2u16, 4, 8];
    let swept = runner::speedups(AppKind::Bt, Variant::Dsm2, true, &nodes, SCALE).unwrap();
    for (&n, &s) in nodes.iter().zip(&swept) {
        let single = runner::speedup(AppKind::Bt, Variant::Dsm2, true, n, SCALE).unwrap();
        assert_eq!(
            s.to_bits(),
            single.to_bits(),
            "speedup at {n} nodes diverged"
        );
    }
}
