//! Per-node step-stream construction for the four kernels.

use crate::apps::{AppKind, AppParams, Variant};
use crate::array::{Mapping, SharedArray};
use cenju4_des::Duration;
use cenju4_directory::NodeId;
use cenju4_sim::{Program, Step, SystemConfig};
use std::collections::VecDeque;

/// A fully materialized program: one step queue per node.
///
/// # Examples
///
/// ```
/// use cenju4_workloads::{AppKind, KernelProgram, Variant};
/// use cenju4_sim::SystemConfig;
///
/// let cfg = SystemConfig::new(4)?;
/// let prog = KernelProgram::build(AppKind::Bt, Variant::Dsm1, true, &cfg, 0.25);
/// assert!(prog.total_steps() > 0);
/// # Ok::<(), cenju4_directory::SystemSizeError>(())
/// ```
pub struct KernelProgram {
    queues: Vec<VecDeque<Step>>,
    instructions: Vec<u64>,
}

impl Program for KernelProgram {
    fn next_step(&mut self, node: NodeId) -> Option<Step> {
        self.queues[node.as_usize()].pop_front()
    }
}

impl KernelProgram {
    /// Builds the step streams for `(app, variant, mapping)` on the
    /// machine described by `cfg`, at problem-size multiplier `scale`.
    ///
    /// For [`Variant::Seq`] the whole problem runs on node 0 and `mapping`
    /// is ignored; for [`Variant::Mpi`] `mapping` is ignored (message
    /// passing uses private memory only).
    pub fn build(
        app: AppKind,
        variant: Variant,
        mapping: bool,
        cfg: &SystemConfig,
        scale: f64,
    ) -> KernelProgram {
        let p = AppParams::for_app(app, scale);
        let nodes = cfg.sys.nodes();
        let mut b = Builder::new(nodes, cfg.mpi_latency, cfg.mpi_bytes_per_us);
        match (app, variant) {
            (_, Variant::Seq) => b.seq(app, &p),
            (_, Variant::Mpi) => b.mpi(app, &p),
            (AppKind::Bt | AppKind::Sp, v) => b.grid_solver(&p, v, Mapping::from_flag(mapping)),
            (AppKind::Cg, _) => b.cg(&p, Mapping::from_flag(mapping)),
            (AppKind::Ft, v) => b.ft(&p, v, Mapping::from_flag(mapping)),
        }
        // Estimate executed instructions per node: ~8 per memory access,
        // ~0.4 per think-nanosecond (an R10000-class 4-way core at
        // ~200 MHz sustains a few hundred MIPS).
        let instructions = b
            .queues
            .iter()
            .map(|q| {
                q.iter()
                    .map(|s| match s {
                        Step::Access { reuse, .. } => 8 * (*reuse).max(1) as u64,
                        Step::Think(d) => d.as_ns() * 2 / 5,
                        Step::Barrier => 200,
                    })
                    .sum()
            })
            .collect();
        KernelProgram {
            queues: b.queues,
            instructions,
        }
    }

    /// Estimated instructions node `node` will execute.
    pub fn node_instructions(&self, node: NodeId) -> u64 {
        self.instructions[node.as_usize()]
    }

    /// Estimated instructions across the machine.
    pub fn total_instructions(&self) -> u64 {
        self.instructions.iter().sum()
    }

    /// Total steps across all nodes (for sizing sanity checks).
    pub fn total_steps(&self) -> usize {
        self.queues.iter().map(|q| q.len()).sum()
    }

    /// Steps queued for one node.
    pub fn node_steps(&self, node: NodeId) -> usize {
        self.queues[node.as_usize()].len()
    }
}

/// Stream builder with per-node emit helpers.
struct Builder {
    queues: Vec<VecDeque<Step>>,
    nodes: u16,
    mpi_latency: Duration,
    mpi_bytes_per_us: u64,
}

impl Builder {
    fn new(nodes: u16, mpi_latency: Duration, mpi_bytes_per_us: u64) -> Self {
        Builder {
            queues: (0..nodes).map(|_| VecDeque::new()).collect(),
            nodes,
            mpi_latency,
            mpi_bytes_per_us,
        }
    }

    fn emit(&mut self, node: u16, step: Step) {
        self.queues[node as usize].push_back(step);
    }

    fn barrier_all(&mut self) {
        for n in 0..self.nodes {
            self.emit(n, Step::Barrier);
        }
    }

    fn mpi_exchange(&mut self, node: u16, bytes: u64) {
        let t = self.mpi_latency + Duration::from_ns(bytes * 1_000 / self.mpi_bytes_per_us);
        self.emit(node, Step::Think(t));
    }

    // ------------------------------------------------------------------
    // seq: the whole problem on node 0, private memory, no sync.
    // ------------------------------------------------------------------
    fn seq(&mut self, app: AppKind, p: &AppParams) {
        match app {
            AppKind::Bt | AppKind::Sp => {
                for _ in 0..p.iters {
                    for _ in 0..p.blocks * p.sweeps {
                        self.emit(0, Step::private_miss(2 * p.reuse));
                        self.emit(0, Step::think(p.think_ns));
                    }
                }
            }
            AppKind::Ft => {
                for _ in 0..p.iters {
                    // Compute passes + transpose passes, all private.
                    for _ in 0..p.blocks * 2 {
                        self.emit(0, Step::private_miss(2 * p.reuse));
                        self.emit(0, Step::think(p.think_ns));
                    }
                }
            }
            AppKind::Cg => {
                for _ in 0..p.iters {
                    // Matrix stream.
                    for _ in 0..p.matrix_factor * p.blocks {
                        self.emit(0, Step::private_miss(p.reuse));
                        self.emit(0, Step::think(p.think_ns / 4));
                    }
                    // Vector read with full single-node reuse + result.
                    for _ in 0..p.blocks {
                        self.emit(0, Step::private_miss(p.gather_reuse.max(1)));
                        self.emit(
                            0,
                            Step::think(p.think_ns * p.gather_reuse.max(1) as u64 / 8),
                        );
                        self.emit(0, Step::private_miss(2));
                    }
                }
            }
        }
    }

    // ------------------------------------------------------------------
    // mpi: dsm(2)'s private compute + explicitly costed exchanges.
    // ------------------------------------------------------------------
    fn mpi(&mut self, app: AppKind, p: &AppParams) {
        let own = (p.blocks / self.nodes as u32).max(1);
        for _ in 0..p.iters {
            match app {
                AppKind::Bt | AppKind::Sp => {
                    for _ in 0..p.sweeps {
                        for n in 0..self.nodes {
                            for _ in 0..own {
                                self.emit(n, Step::private_miss(2 * p.reuse));
                                self.emit(n, Step::think(p.think_ns));
                            }
                            // Boundary-plane exchange with two neighbors.
                            let bd = (own / p.boundary_div).max(1) as u64;
                            self.mpi_exchange(n, bd * 2 * 128);
                        }
                        self.barrier_all();
                    }
                }
                AppKind::Cg => {
                    let matrix_per_node = (p.matrix_factor * p.blocks / self.nodes as u32).max(1);
                    let reuse = (p.gather_reuse / self.nodes as u32).max(1);
                    for n in 0..self.nodes {
                        for _ in 0..matrix_per_node {
                            self.emit(n, Step::private_miss(p.reuse));
                            self.emit(n, Step::think(p.think_ns / 4));
                        }
                        for _ in 0..p.blocks {
                            self.emit(n, Step::private_miss(reuse));
                            self.emit(n, Step::think(p.think_ns * reuse as u64 / 8));
                        }
                        // Allgather of the updated vector.
                        self.mpi_exchange(n, p.blocks as u64 * 128);
                    }
                    self.barrier_all();
                }
                AppKind::Ft => {
                    for n in 0..self.nodes {
                        for _ in 0..own {
                            self.emit(n, Step::private_miss(2 * p.reuse));
                            self.emit(n, Step::think(p.think_ns));
                        }
                        // All-to-all transpose of the owned tiles.
                        self.mpi_exchange(n, own as u64 * 128);
                    }
                    self.barrier_all();
                    for n in 0..self.nodes {
                        for _ in 0..own {
                            self.emit(n, Step::private_hit(p.reuse));
                            self.emit(n, Step::think(p.think_ns));
                        }
                    }
                    self.barrier_all();
                }
            }
        }
    }

    // ------------------------------------------------------------------
    // BT / SP shared-memory variants.
    // ------------------------------------------------------------------

    /// dsm(1): each sweep parallelizes its own outermost loop, so the
    /// effective partition changes between sweeps and blocks migrate
    /// between caches every iteration. dsm(2): one fixed partition, all
    /// interior work in private memory, boundary planes pushed through
    /// receive buffers homed (when mapped) on the consuming node.
    fn grid_solver(&mut self, p: &AppParams, v: Variant, mapping: Mapping) {
        let grid = SharedArray::new(0, p.blocks, self.nodes, mapping);
        match v {
            Variant::Dsm1 => {
                for _ in 0..p.iters {
                    for sweep in 0..p.sweeps {
                        for b in 0..p.blocks {
                            let n = self.sweep_owner(p, sweep, b);
                            self.emit(n, Step::load_reuse(grid.addr(b), p.reuse));
                            // Stencil reads of the neighbouring planes: in
                            // the cross-partitioned sweeps these blocks
                            // belong to (and were just written by) other
                            // nodes — the naive program's penalty.
                            let left = (b + p.blocks - 1) % p.blocks;
                            let right = (b + 1) % p.blocks;
                            self.emit(n, Step::load_reuse(grid.addr(left), p.reuse / 2));
                            self.emit(n, Step::load_reuse(grid.addr(right), p.reuse / 2));
                            self.emit(n, Step::think(p.think_ns));
                            self.emit(n, Step::store_reuse(grid.addr(b), p.reuse));
                        }
                        self.barrier_all();
                    }
                }
            }
            Variant::Dsm2 => {
                // Boundary receive buffers: array 1 holds, for each node,
                // the plane its left neighbor pushes; array 2 the right.
                // Under `Partitioned` mapping each buffer block is homed on
                // its consuming (owner) node — the push writes remotely,
                // the consuming load is a *local* miss.
                let left_buf = SharedArray::new(1, p.blocks, self.nodes, mapping);
                let right_buf = SharedArray::new(2, p.blocks, self.nodes, mapping);
                for _ in 0..p.iters {
                    for _ in 0..p.sweeps {
                        for n in 0..self.nodes {
                            let own = grid.owned_range(NodeId::new(n));
                            let bd = ((own.len() as u32) / p.boundary_div).max(1);
                            // Interior compute in private memory.
                            for _ in own.clone() {
                                self.emit(n, Step::private_miss(2 * p.reuse));
                                self.emit(n, Step::think(p.think_ns));
                            }
                            // Push boundary planes into the neighbors'
                            // receive buffers…
                            let left = (n + self.nodes - 1) % self.nodes;
                            let right = (n + 1) % self.nodes;
                            for i in 0..bd {
                                let lb = pick_in(&right_buf.owned_range(NodeId::new(left)), i);
                                self.emit(n, Step::store_reuse(right_buf.addr(lb), p.reuse));
                                let rb = pick_in(&left_buf.owned_range(NodeId::new(right)), i);
                                self.emit(n, Step::store_reuse(left_buf.addr(rb), p.reuse));
                            }
                            // …and read the planes pushed to us.
                            for i in 0..bd {
                                let lb = pick_in(&left_buf.owned_range(NodeId::new(n)), i);
                                self.emit(n, Step::load_reuse(left_buf.addr(lb), p.reuse));
                                let rb = pick_in(&right_buf.owned_range(NodeId::new(n)), i);
                                self.emit(n, Step::load_reuse(right_buf.addr(rb), p.reuse));
                            }
                        }
                        self.barrier_all();
                    }
                }
            }
            Variant::Seq | Variant::Mpi => unreachable!("handled by caller"),
        }
    }

    /// The node working on block `b` during `sweep` in dsm(1): sweep 0 and
    /// 1 use the contiguous partition (the second shifted by a quarter
    /// chunk), sweep 2+ a strided one — loop nests over different
    /// dimensions partition the same data differently.
    fn sweep_owner(&self, p: &AppParams, sweep: u32, b: u32) -> u16 {
        let n = self.nodes as u32;
        match sweep % 3 {
            0 => (b as u64 * n as u64 / p.blocks as u64) as u16,
            1 => {
                let chunk = (p.blocks / n).max(1);
                let shifted = (b + chunk / 4) % p.blocks;
                (shifted as u64 * n as u64 / p.blocks as u64) as u16
            }
            _ => (b % n) as u16,
        }
    }

    // ------------------------------------------------------------------
    // CG: whole-vector gathers with per-node reuse that shrinks as the
    // machine grows. Optimization and mapping do not change the pattern
    // (the paper: "optimizing memory access patterns and specifying data
    // mappings has no effect" on CG).
    // ------------------------------------------------------------------
    fn cg(&mut self, p: &AppParams, mapping: Mapping) {
        let q = SharedArray::new(0, p.blocks, self.nodes, mapping);
        let r = SharedArray::new(1, p.blocks, self.nodes, mapping);
        let reuse = (p.gather_reuse / self.nodes as u32).max(1);
        // The sparse matrix streams through private memory: much larger
        // than the vector and split evenly across nodes — except that row
        // lengths vary, and the imbalance a node sees grows as its row
        // count shrinks (~sqrt(n)). This is what drives CG's sync-time
        // fraction from ~7% at 16 nodes to ~25% at 128 in Table 4.
        let matrix_base = (p.matrix_factor * p.blocks / self.nodes as u32).max(1);
        let spread = 0.5 * (self.nodes as f64 / 128.0).sqrt();
        for _ in 0..p.iters {
            for n in 0..self.nodes {
                let h = {
                    let mut x = n as u64 + 0x9E37;
                    x = (x ^ (x >> 13)).wrapping_mul(0xFF51_AFD7_ED55_8CCD);
                    (x >> 40) as f64 / (1u64 << 24) as f64
                };
                let matrix_per_node = ((matrix_base as f64) * (1.0 + spread * h)).round() as u32;
                let own = q.owned_range(NodeId::new(n));
                for _ in 0..matrix_per_node {
                    self.emit(n, Step::private_miss(p.reuse));
                    self.emit(n, Step::think(p.think_ns / 4));
                }
                // Gather: read the *entire* shared vector. Each node
                // starts at its own partition and wraps, as the row
                // structure of a real sparse matrix staggers accesses —
                // otherwise every node would hammer block 0's home at
                // the same instant.
                for k in 0..p.blocks {
                    let b = (k + own.start) % p.blocks;
                    self.emit(n, Step::load_reuse(q.addr(b), reuse));
                    self.emit(n, Step::think(p.think_ns * reuse as u64 / 8));
                }
                // Scatter the owned slice of the result.
                for b in own {
                    self.emit(n, Step::store_reuse(r.addr(b), reuse));
                }
            }
            self.barrier_all();
            // p/q swap: the result becomes next iteration's vector — the
            // owners' stores invalidate every cached copy machine-wide.
            for n in 0..self.nodes {
                for b in q.owned_range(NodeId::new(n)) {
                    self.emit(n, Step::store_reuse(q.addr(b), 2));
                }
            }
            self.barrier_all();
        }
    }

    // ------------------------------------------------------------------
    // FT: private butterflies + all-to-all transpose through shared tiles.
    // ------------------------------------------------------------------
    fn ft(&mut self, p: &AppParams, v: Variant, mapping: Mapping) {
        // Tiles written by their owner, read all-to-all. When mapped, the
        // write side is local; the read side is remote (1/n local).
        let tiles = SharedArray::new(0, p.blocks, self.nodes, mapping);
        // dsm(2) moves more of the line-FFT work into private memory.
        let private_fraction = match v {
            Variant::Dsm1 => 1u32,
            Variant::Dsm2 => 2u32,
            _ => unreachable!("handled by caller"),
        };
        for _ in 0..p.iters {
            for n in 0..self.nodes {
                let own = tiles.owned_range(NodeId::new(n));
                // Local FFT passes.
                for _ in 0..(own.len() as u32 * private_fraction) {
                    self.emit(n, Step::private_miss(p.reuse));
                    self.emit(n, Step::think(p.think_ns));
                }
                // Publish owned tiles.
                for b in own.clone() {
                    self.emit(n, Step::store_reuse(tiles.addr(b), p.reuse / 2));
                }
            }
            self.barrier_all();
            // Transpose read: node n reads a 1/n stripe of every other
            // node's tiles. The naive variant's loop order re-reads each
            // remote tile several times with poor blocking (more stripes,
            // less reuse per visit); dsm(2)'s loop translation fixes that.
            let (stripe_scale, read_reuse) = match v {
                Variant::Dsm1 => (4u32, (p.reuse / 8).max(1)),
                _ => (1u32, p.reuse / 2),
            };
            for n in 0..self.nodes {
                let per_node = ((p.blocks / self.nodes as u32).max(1) * stripe_scale).min(p.blocks);
                for k in 0..per_node {
                    // Deterministic spread over the whole tile array.
                    let b = (k as u64 * 2654435761 + n as u64 * 97) % p.blocks as u64;
                    self.emit(n, Step::load_reuse(tiles.addr(b as u32), read_reuse));
                    self.emit(n, Step::think(p.think_ns / 2 / stripe_scale as u64));
                }
            }
            self.barrier_all();
        }
    }
}

/// Picks the `i`-th block of a range, clamped to its end.
fn pick_in(range: &std::ops::Range<u32>, i: u32) -> u32 {
    if range.is_empty() {
        range.start
    } else {
        (range.start + i).min(range.end - 1)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cenju4_sim::SystemConfig;

    fn cfg(n: u16) -> SystemConfig {
        SystemConfig::new(n).unwrap()
    }

    #[test]
    fn all_variants_build_nonempty() {
        for app in AppKind::ALL {
            for v in [Variant::Seq, Variant::Mpi, Variant::Dsm1, Variant::Dsm2] {
                let prog = KernelProgram::build(app, v, true, &cfg(4), 0.1);
                assert!(prog.total_steps() > 0, "{app} {v}");
            }
        }
    }

    #[test]
    fn seq_runs_only_on_node_zero() {
        let prog = KernelProgram::build(AppKind::Bt, Variant::Seq, true, &cfg(4), 0.1);
        assert!(prog.node_steps(NodeId::new(0)) > 0);
        for n in 1..4u16 {
            assert_eq!(prog.node_steps(NodeId::new(n)), 0);
        }
    }

    #[test]
    fn dsm_variants_balance_work() {
        for app in AppKind::ALL {
            let prog = KernelProgram::build(app, Variant::Dsm2, true, &cfg(4), 0.2);
            let counts: Vec<usize> = (0..4).map(|n| prog.node_steps(NodeId::new(n))).collect();
            let max = *counts.iter().max().unwrap();
            let min = *counts.iter().min().unwrap();
            assert!(
                max - min <= max / 2 + 8,
                "{app}: unbalanced steps {counts:?}"
            );
        }
    }

    #[test]
    fn dsm1_moves_blocks_between_sweeps() {
        // The strided sweep must assign at least some blocks to a node
        // other than the contiguous owner.
        let p = AppParams::for_app(AppKind::Bt, 0.1);
        let b = Builder::new(4, Duration::from_us(9), 169);
        let moved = (0..p.blocks)
            .filter(|&blk| b.sweep_owner(&p, 0, blk) != b.sweep_owner(&p, 2, blk))
            .count();
        assert!(moved as u32 > p.blocks / 2, "only {moved} blocks migrate");
    }

    #[test]
    fn mpi_variant_has_no_shared_accesses() {
        let prog = KernelProgram::build(AppKind::Ft, Variant::Mpi, true, &cfg(4), 0.1);
        for q in &prog.queues {
            for s in q {
                if let Step::Access { target, .. } = s {
                    assert!(
                        !matches!(target, cenju4_sim::Target::Shared(_)),
                        "mpi must not touch DSM"
                    );
                }
            }
        }
    }
}

#[cfg(test)]
mod instruction_tests {
    use super::*;
    use cenju4_sim::SystemConfig;

    #[test]
    fn per_node_instructions_scale_down_with_nodes() {
        // Table 4: "the numbers of total executed instructions ...
        // decrease with an increase in the number of nodes" (per node).
        let c16 = SystemConfig::new(16).unwrap();
        let c64 = SystemConfig::new(64).unwrap();
        let p16 = KernelProgram::build(AppKind::Bt, Variant::Dsm2, true, &c16, 0.5);
        let p64 = KernelProgram::build(AppKind::Bt, Variant::Dsm2, true, &c64, 0.5);
        let n16 = p16.node_instructions(NodeId::new(0));
        let n64 = p64.node_instructions(NodeId::new(0));
        assert!(
            n64 * 3 < n16,
            "per-node work must shrink ~4x: {n16} -> {n64}"
        );
        // Total work is roughly node-count independent (same problem).
        let t16 = p16.total_instructions() as f64;
        let t64 = p64.total_instructions() as f64;
        assert!(
            (t64 / t16 - 1.0).abs() < 0.35,
            "total work drifted: {t16} vs {t64}"
        );
    }

    #[test]
    fn seq_and_parallel_totals_are_comparable() {
        let c = SystemConfig::new(8).unwrap();
        let seq = KernelProgram::build(AppKind::Sp, Variant::Seq, true, &c, 0.25);
        let par = KernelProgram::build(AppKind::Sp, Variant::Dsm2, true, &c, 0.25);
        let ratio = par.total_instructions() as f64 / seq.total_instructions() as f64;
        assert!(
            (0.6..=1.8).contains(&ratio),
            "parallel/seq instruction ratio {ratio:.2} out of range"
        );
    }
}
