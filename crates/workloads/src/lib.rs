//! Synthetic NAS-Parallel-Benchmark-style workloads for the Cenju-4
//! reproduction.
//!
//! The paper evaluates its DSM with four NPB 2.3 Class A kernels — BT, CG,
//! FT and SP — each in four program variants: `seq` (sequential), `mpi`
//! (message passing), `dsm(1)` (naive outer-loop parallelization of the
//! sequential program) and `dsm(2)` (memory-access-optimized), the DSM
//! variants with and without *data mappings* (placing each shared page on
//! the node that uses it most).
//!
//! We do not have the Fortran sources, an R10000, or weeks of simulated
//! instructions — what the evaluation actually depends on is each kernel's
//! **memory access pattern**, so this crate generates those patterns
//! synthetically (see DESIGN.md for the substitution argument):
//!
//! * **BT / SP** — structured-grid sweeps. `dsm(1)` re-partitions the grid
//!   differently per sweep (the consequence of parallelizing each loop
//!   nest's outermost loop), so blocks migrate between nodes every sweep;
//!   `dsm(2)` keeps a fixed partition, computes in private memory, and
//!   exchanges boundary planes through locally-homed receive buffers.
//! * **CG** — sparse mat-vec: every node reads the *entire* shared vector
//!   each iteration with per-block reuse that shrinks as nodes are added —
//!   the access pattern the paper blames for CG's speedup saturation.
//!   Optimization and mapping do not help it, as in the paper.
//! * **FT** — local FFT passes in private memory plus an all-to-all
//!   transpose through shared tiles.
//! * **mpi** — the same computation with exchanges costed by the paper's
//!   measured MPI figures (9.1 µs latency, 169 MB/s).
//!
//! [`runner`] executes any (app, variant, mapping, nodes) combination and
//! returns the Table-3/4-shaped [`cenju4_sim::RunReport`]; [`rewrite`]
//! carries the Figure 11(a) programming-effort data.
//!
//! # Examples
//!
//! ```
//! use cenju4_workloads::{runner, AppKind, Variant};
//!
//! // A small CG run on 4 nodes, optimized variant with data mapping.
//! let report = runner::run_workload(AppKind::Cg, Variant::Dsm2, true, 4, 0.25)?;
//! assert!(report.total_time().as_ns() > 0);
//! # Ok::<(), cenju4_directory::SystemSizeError>(())
//! ```

pub mod apps;
pub mod array;
pub mod program;
pub mod rewrite;
pub mod runner;

pub use apps::{AppKind, AppParams, Variant};
pub use program::KernelProgram;
