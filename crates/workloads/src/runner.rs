//! High-level experiment execution: run a workload, compute speedups.

use crate::apps::{AppKind, Variant};
use crate::program::KernelProgram;
use cenju4_directory::SystemSizeError;
use cenju4_protocol::ParallelConfig;
use cenju4_sim::{ConfigError, Driver, RunReport, SystemConfig};

/// Runs `(app, variant, mapping)` on `nodes` nodes at problem-size
/// multiplier `scale` and returns the run report.
///
/// # Errors
///
/// Returns [`SystemSizeError`] for invalid node counts.
pub fn run_workload(
    app: AppKind,
    variant: Variant,
    mapping: bool,
    nodes: u16,
    scale: f64,
) -> Result<RunReport, SystemSizeError> {
    let cfg = SystemConfig::new(nodes)?;
    run_workload_on(&cfg, app, variant, mapping, scale)
}

/// Like [`run_workload`] but against a caller-supplied machine
/// configuration (for ablations: no multicast, nack protocol, …).
pub fn run_workload_on(
    cfg: &SystemConfig,
    app: AppKind,
    variant: Variant,
    mapping: bool,
    scale: f64,
) -> Result<RunReport, SystemSizeError> {
    let prog = KernelProgram::build(app, variant, mapping, cfg, scale);
    Ok(Driver::new(cfg, prog).run())
}

/// Runs CG with its shared vectors switched to the **update protocol**
/// with main-memory third-level caching — the fix Section 4.2.3 of the
/// paper proposes for CG's saturation. Stores to the vector push fresh
/// data to every subscriber; the per-iteration re-reads then hit each
/// node's local memory instead of missing remotely.
///
/// # Errors
///
/// Returns [`SystemSizeError`] for invalid node counts.
pub fn run_cg_with_update(nodes: u16, scale: f64) -> Result<RunReport, SystemSizeError> {
    use crate::array::{Mapping, SharedArray};
    let cfg = SystemConfig::new(nodes)?;
    let prog = KernelProgram::build(AppKind::Cg, Variant::Dsm2, true, &cfg, scale);
    let mut driver = Driver::new(&cfg, prog);
    let p = crate::apps::AppParams::for_app(AppKind::Cg, scale);
    for array_id in [0u32, 1] {
        let arr = SharedArray::new(array_id, p.blocks, nodes, Mapping::Partitioned);
        for b in 0..p.blocks {
            driver.engine_mut().mark_update_block(arr.addr(b));
        }
    }
    Ok(driver.run())
}

/// CG speedup with the update-protocol extension enabled.
///
/// # Errors
///
/// Propagates configuration errors.
pub fn cg_update_speedup(nodes: u16, scale: f64) -> Result<f64, SystemSizeError> {
    let t_seq = sequential_time(AppKind::Cg, scale)? as f64;
    let t_par = run_cg_with_update(nodes, scale)?.total_time().as_ns() as f64;
    Ok(t_seq / t_par)
}

/// The sequential execution time of `app` at `scale`, in simulated ns.
///
/// # Errors
///
/// Propagates configuration errors.
pub fn sequential_time(app: AppKind, scale: f64) -> Result<u64, SystemSizeError> {
    // The machine needs ≥ 2 nodes; the seq program only uses node 0.
    let report = run_workload(app, Variant::Seq, true, 2, scale)?;
    Ok(report.total_time().as_ns())
}

/// Speedup of a parallel run relative to the sequential program:
/// `T_seq / T_par` (Figure 12's y-axis).
///
/// # Errors
///
/// Propagates configuration errors.
pub fn speedup(
    app: AppKind,
    variant: Variant,
    mapping: bool,
    nodes: u16,
    scale: f64,
) -> Result<f64, SystemSizeError> {
    let t_seq = sequential_time(app, scale)? as f64;
    let t_par = run_workload(app, variant, mapping, nodes, scale)?
        .total_time()
        .as_ns() as f64;
    Ok(t_seq / t_par)
}

/// Speedups at several machine sizes, computed in parallel: one
/// [`cenju4_sim::sweep`] point per node count, each running its own
/// engine. The sequential baseline is measured once, up front. Results
/// are in `nodes` order and identical to calling [`speedup`] per count.
///
/// # Errors
///
/// Propagates configuration errors.
pub fn speedups(
    app: AppKind,
    variant: Variant,
    mapping: bool,
    nodes: &[u16],
    scale: f64,
) -> Result<Vec<f64>, SystemSizeError> {
    speedups_parallel(
        app,
        variant,
        mapping,
        nodes,
        scale,
        ParallelConfig::default(),
    )
}

/// Like [`speedups`], but every per-count engine executes with the given
/// parallel configuration (the `--workers` flag of the figure binaries).
/// Simulated times — and therefore the speedups — are identical at any
/// worker count; only wall-clock changes.
///
/// # Errors
///
/// Propagates configuration errors.
///
/// # Panics
///
/// Panics if `parallel.workers` is zero.
pub fn speedups_parallel(
    app: AppKind,
    variant: Variant,
    mapping: bool,
    nodes: &[u16],
    scale: f64,
    parallel: ParallelConfig,
) -> Result<Vec<f64>, SystemSizeError> {
    assert!(parallel.workers > 0, "workers must be >= 1");
    let t_seq = sequential_time(app, scale)? as f64;
    cenju4_sim::sweep(nodes, |&n| {
        let cfg = SystemConfig::builder(n)
            .parallel(parallel)
            .build()
            .map_err(|e| match e {
                ConfigError::Size(s) => s,
                other => unreachable!("default parameters rejected: {other}"),
            })?;
        let t_par = run_workload_on(&cfg, app, variant, mapping, scale)?;
        Ok(t_seq / t_par.total_time().as_ns() as f64)
    })
    .into_iter()
    .collect()
}

/// Parallel efficiency: `speedup / nodes` (Figure 11(b)'s y-axis).
///
/// # Errors
///
/// Propagates configuration errors.
pub fn efficiency(
    app: AppKind,
    variant: Variant,
    mapping: bool,
    nodes: u16,
    scale: f64,
) -> Result<f64, SystemSizeError> {
    Ok(speedup(app, variant, mapping, nodes, scale)? / nodes as f64)
}

#[cfg(test)]
mod tests {
    use super::*;
    use cenju4_sim::AccessClass;

    const SCALE: f64 = 0.5;

    #[test]
    fn seq_time_positive_and_deterministic() {
        let a = sequential_time(AppKind::Sp, SCALE).unwrap();
        let b = sequential_time(AppKind::Sp, SCALE).unwrap();
        assert!(a > 0);
        assert_eq!(a, b);
    }

    #[test]
    fn dsm_programs_speed_up_with_nodes() {
        for app in [AppKind::Bt, AppKind::Ft] {
            let s2 = speedup(app, Variant::Dsm2, true, 2, SCALE).unwrap();
            let s8 = speedup(app, Variant::Dsm2, true, 8, SCALE).unwrap();
            assert!(s8 > s2, "{app}: {s2:.2} !< {s8:.2}");
            assert!(s2 > 0.8, "{app}: 2-node speedup {s2:.2} implausible");
        }
    }

    #[test]
    fn dsm2_beats_dsm1_on_grid_solvers() {
        for app in [AppKind::Bt, AppKind::Sp] {
            let e1 = efficiency(app, Variant::Dsm1, true, 8, SCALE).unwrap();
            let e2 = efficiency(app, Variant::Dsm2, true, 8, SCALE).unwrap();
            assert!(e2 > e1, "{app}: dsm2 ({e2:.2}) must beat dsm1 ({e1:.2})");
        }
    }

    #[test]
    fn mapping_reduces_remote_misses_for_dsm1_grid() {
        let unmapped = run_workload(AppKind::Bt, Variant::Dsm1, false, 8, SCALE).unwrap();
        let mapped = run_workload(AppKind::Bt, Variant::Dsm1, true, 8, SCALE).unwrap();
        let rf_un = unmapped.miss_fraction(AccessClass::SharedRemote);
        let rf_map = mapped.miss_fraction(AccessClass::SharedRemote);
        assert!(
            rf_map < rf_un,
            "mapping must localize misses: {rf_map:.2} !< {rf_un:.2}"
        );
        assert!(rf_un > 0.6, "unmapped dsm1 should be remote-dominated");
    }

    #[test]
    fn cg_is_insensitive_to_optimization() {
        let e1 = efficiency(AppKind::Cg, Variant::Dsm1, true, 8, SCALE).unwrap();
        let e2 = efficiency(AppKind::Cg, Variant::Dsm2, true, 8, SCALE).unwrap();
        assert!(
            (e1 - e2).abs() < 0.10,
            "CG dsm1 {e1:.2} vs dsm2 {e2:.2} should be close"
        );
    }

    #[test]
    fn cg_saturates_bt_does_not() {
        // CG's efficiency collapses as nodes grow; BT's dsm2 holds up.
        let cg4 = efficiency(AppKind::Cg, Variant::Dsm2, true, 4, SCALE).unwrap();
        let cg32 = efficiency(AppKind::Cg, Variant::Dsm2, true, 32, SCALE).unwrap();
        let bt32 = efficiency(AppKind::Bt, Variant::Dsm2, true, 32, SCALE).unwrap();
        assert!(cg32 < cg4 * 0.7, "CG must degrade: {cg4:.2} -> {cg32:.2}");
        assert!(
            bt32 > cg32,
            "BT ({bt32:.2}) must scale better than CG ({cg32:.2})"
        );
    }

    #[test]
    fn dsm2_has_higher_private_fraction() {
        let d1 = run_workload(AppKind::Bt, Variant::Dsm1, true, 8, SCALE).unwrap();
        let d2 = run_workload(AppKind::Bt, Variant::Dsm2, true, 8, SCALE).unwrap();
        assert!(
            d2.access_fraction(AccessClass::Private) > d1.access_fraction(AccessClass::Private)
        );
        assert!(d2.miss_ratio() < d1.miss_ratio());
    }

    #[test]
    fn speedups_are_worker_count_invariant() {
        // Same simulated times → bit-identical speedup ratios.
        let seq = speedups(AppKind::Bt, Variant::Dsm2, true, &[4, 8], SCALE).unwrap();
        let par = speedups_parallel(
            AppKind::Bt,
            Variant::Dsm2,
            true,
            &[4, 8],
            SCALE,
            ParallelConfig::with_workers(4),
        )
        .unwrap();
        assert_eq!(seq, par);
    }

    #[test]
    fn mpi_scales_well() {
        let e = efficiency(AppKind::Bt, Variant::Mpi, true, 8, SCALE).unwrap();
        assert!(e > 0.5, "mpi efficiency {e:.2} too low");
    }

    #[test]
    fn sync_fraction_grows_with_nodes() {
        let r4 = run_workload(AppKind::Sp, Variant::Dsm2, true, 4, SCALE).unwrap();
        let r16 = run_workload(AppKind::Sp, Variant::Dsm2, true, 16, SCALE).unwrap();
        assert!(
            r16.sync_fraction() > r4.sync_fraction(),
            "{:.3} !> {:.3}",
            r16.sync_fraction(),
            r4.sync_fraction()
        );
    }
}
