//! Application and variant identifiers plus per-app sizing parameters.

use core::fmt;

/// The four NPB kernels the paper evaluates.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum AppKind {
    /// Block-tridiagonal solver: structured-grid sweeps, compute-heavy.
    Bt,
    /// Conjugate gradient: sparse mat-vec with whole-vector gathers.
    Cg,
    /// 3-D FFT: private butterflies plus an all-to-all transpose.
    Ft,
    /// Scalar-pentadiagonal solver: like BT with less compute per point.
    Sp,
}

impl AppKind {
    /// All four apps in the paper's order.
    pub const ALL: [AppKind; 4] = [AppKind::Bt, AppKind::Cg, AppKind::Ft, AppKind::Sp];

    /// Display name as used in the paper.
    pub fn name(self) -> &'static str {
        match self {
            AppKind::Bt => "BT",
            AppKind::Cg => "CG",
            AppKind::Ft => "FT",
            AppKind::Sp => "SP",
        }
    }

    /// The node count the paper measures this app at (Table 3 / Fig 11):
    /// 64 for BT and SP, 128 for CG and FT.
    pub fn paper_nodes(self) -> u16 {
        match self {
            AppKind::Bt | AppKind::Sp => 64,
            AppKind::Cg | AppKind::Ft => 128,
        }
    }
}

impl fmt::Display for AppKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

/// The four program variants of Section 4.2.1.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum Variant {
    /// The given sequential program.
    Seq,
    /// The given MPI program (message passing, modeled by the paper's
    /// measured latency/bandwidth).
    Mpi,
    /// Naive parallelization: only the outermost loop of each nest.
    Dsm1,
    /// Memory-access-optimized shared-memory program.
    Dsm2,
}

impl Variant {
    /// Display name as used in the paper.
    pub fn name(self) -> &'static str {
        match self {
            Variant::Seq => "seq",
            Variant::Mpi => "mpi",
            Variant::Dsm1 => "dsm(1)",
            Variant::Dsm2 => "dsm(2)",
        }
    }
}

impl fmt::Display for Variant {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

/// Sizing and intensity parameters for one app at one scale.
///
/// `scale` multiplies the block counts (problem size); the reuse and
/// think-time parameters are scale-independent intensity knobs calibrated
/// so the Table-3/Table-4 shapes come out (see DESIGN.md).
#[derive(Clone, Copy, Debug)]
pub struct AppParams {
    /// Total shared-grid blocks (the main data structure).
    pub blocks: u32,
    /// Outer iterations.
    pub iters: u32,
    /// Accesses per block visit in the naive variant.
    pub reuse: u32,
    /// Non-memory compute time per block visit, ns.
    pub think_ns: u64,
    /// Grid sweeps per iteration (BT/SP) or phases (CG/FT).
    pub sweeps: u32,
    /// One boundary plane is `blocks / nodes / boundary_div` blocks.
    pub boundary_div: u32,
    /// CG: whole-machine reuse budget per vector block; per-node reuse is
    /// `max(1, gather_reuse / nodes)` — the "time shared data is reused
    /// decreases with the number of nodes" effect.
    pub gather_reuse: u32,
    /// CG: the sparse matrix is `matrix_factor` times larger than the
    /// vector; it streams through private memory and dominates the miss
    /// mix at small node counts (Table 4: 90% private misses at 16 nodes,
    /// 18% at 128).
    pub matrix_factor: u32,
}

impl AppParams {
    /// Parameters for `app` at problem-size multiplier `scale`
    /// (1.0 ≈ a few thousand blocks; tests use 0.25, benches 1–4).
    ///
    /// # Panics
    ///
    /// Panics if `scale` is not positive and finite.
    pub fn for_app(app: AppKind, scale: f64) -> AppParams {
        assert!(scale.is_finite() && scale > 0.0, "bad scale {scale}");
        let sz = |base: u32| ((base as f64 * scale).round() as u32).max(16);
        match app {
            AppKind::Bt => AppParams {
                blocks: sz(2048),
                iters: 3,
                reuse: 48,
                think_ns: 3500,
                sweeps: 3,
                boundary_div: 12,
                gather_reuse: 0,
                matrix_factor: 0,
            },
            AppKind::Sp => AppParams {
                blocks: sz(2048),
                iters: 3,
                reuse: 20,
                think_ns: 2000,
                sweeps: 3,
                boundary_div: 4,
                gather_reuse: 0,
                matrix_factor: 0,
            },
            AppKind::Cg => AppParams {
                blocks: sz(1024),
                iters: 4,
                reuse: 64,
                think_ns: 250,
                sweeps: 1,
                boundary_div: 1,
                gather_reuse: 1024,
                matrix_factor: 32,
            },
            AppKind::Ft => AppParams {
                blocks: sz(2048),
                iters: 3,
                reuse: 32,
                think_ns: 3500,
                sweeps: 2,
                boundary_div: 1,
                gather_reuse: 0,
                matrix_factor: 0,
            },
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn names_match_paper() {
        assert_eq!(AppKind::Bt.name(), "BT");
        assert_eq!(Variant::Dsm1.name(), "dsm(1)");
        assert_eq!(AppKind::Bt.to_string(), "BT");
        assert_eq!(Variant::Mpi.to_string(), "mpi");
    }

    #[test]
    fn paper_node_counts() {
        assert_eq!(AppKind::Bt.paper_nodes(), 64);
        assert_eq!(AppKind::Cg.paper_nodes(), 128);
        assert_eq!(AppKind::Ft.paper_nodes(), 128);
        assert_eq!(AppKind::Sp.paper_nodes(), 64);
    }

    #[test]
    fn scale_multiplies_blocks() {
        let small = AppParams::for_app(AppKind::Bt, 0.5);
        let big = AppParams::for_app(AppKind::Bt, 2.0);
        assert_eq!(big.blocks, small.blocks * 4);
        assert_eq!(small.reuse, big.reuse, "intensity is scale-free");
    }

    #[test]
    #[should_panic]
    fn zero_scale_rejected() {
        let _ = AppParams::for_app(AppKind::Cg, 0.0);
    }
}
