//! Figure 11(a): program rewriting ratios.
//!
//! The rewriting ratio is (lines changed + lines added) / (lines of the
//! sequential program) — a human-effort metric measured on Fortran sources
//! we do not have. We therefore record the paper's own numbers (digitized
//! from Figure 11(a); treat them as approximate to a few points) and
//! verify the orderings the text states:
//!
//! * dsm(1) needs the least rewriting (loop bounds + synchronization);
//! * dsm(2) needs more, but **less than half** of mpi;
//! * specifying data mappings adds only a little.

use crate::apps::AppKind;

/// Rewriting ratios (fraction of sequential lines) for one application.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct RewritingRatios {
    /// Which application.
    pub app: AppKind,
    /// The given MPI program.
    pub mpi: f64,
    /// dsm(1) without data mappings.
    pub dsm1_nomap: f64,
    /// dsm(1) with data mappings.
    pub dsm1: f64,
    /// dsm(2) without data mappings.
    pub dsm2_nomap: f64,
    /// dsm(2) with data mappings.
    pub dsm2: f64,
}

/// The Figure 11(a) data, digitized from the paper.
pub fn paper_rewriting_ratios() -> [RewritingRatios; 4] {
    [
        RewritingRatios {
            app: AppKind::Bt,
            mpi: 0.50,
            dsm1_nomap: 0.045,
            dsm1: 0.06,
            dsm2_nomap: 0.17,
            dsm2: 0.19,
        },
        RewritingRatios {
            app: AppKind::Cg,
            mpi: 0.38,
            dsm1_nomap: 0.05,
            dsm1: 0.065,
            dsm2_nomap: 0.12,
            dsm2: 0.14,
        },
        RewritingRatios {
            app: AppKind::Ft,
            mpi: 0.45,
            dsm1_nomap: 0.04,
            dsm1: 0.055,
            dsm2_nomap: 0.15,
            dsm2: 0.17,
        },
        RewritingRatios {
            app: AppKind::Sp,
            mpi: 0.52,
            dsm1_nomap: 0.05,
            dsm1: 0.065,
            dsm2_nomap: 0.18,
            dsm2: 0.20,
        },
    ]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn orderings_match_the_papers_text() {
        for r in paper_rewriting_ratios() {
            // dsm(1) cheapest; dsm(2) dearer but less than half of mpi.
            assert!(r.dsm1 < r.dsm2, "{}", r.app);
            assert!(r.dsm2 < r.mpi / 2.0, "{}: dsm2 must be < mpi/2", r.app);
            // Mappings add little.
            assert!(r.dsm1 - r.dsm1_nomap < 0.05, "{}", r.app);
            assert!(r.dsm2 - r.dsm2_nomap < 0.05, "{}", r.app);
        }
    }

    #[test]
    fn covers_all_four_apps() {
        let apps: Vec<AppKind> = paper_rewriting_ratios().iter().map(|r| r.app).collect();
        assert_eq!(apps, AppKind::ALL.to_vec());
    }
}
