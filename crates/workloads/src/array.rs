//! Shared-array layout: block ownership and home placement.

use cenju4_directory::NodeId;
use cenju4_protocol::Addr;

/// How a shared array's blocks are placed on home memories.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Mapping {
    /// The program specified data mappings: block `b` is homed on the node
    /// that owns it under the contiguous partition (the paper's
    /// "specifying data mappings … to localize memory accesses").
    Partitioned,
    /// No data mappings: the system's default placement, modeled as a
    /// home chosen by hashing the block index — remote for `(n-1)/n` of
    /// accesses, like the paper's "no data mappings" runs.
    Unmapped,
}

impl Mapping {
    /// From the boolean the runner exposes.
    pub fn from_flag(mapped: bool) -> Mapping {
        if mapped {
            Mapping::Partitioned
        } else {
            Mapping::Unmapped
        }
    }
}

/// A distributed shared array of `blocks` 128-byte blocks.
///
/// Each array instance gets a distinct `array_id` so two arrays never
/// alias the same [`Addr`].
///
/// # Examples
///
/// ```
/// use cenju4_workloads::array::{Mapping, SharedArray};
///
/// let a = SharedArray::new(0, 128, 4, Mapping::Partitioned);
/// // Contiguous partition: node 1 owns blocks 32..64 and they live there.
/// assert_eq!(a.owner(40).index(), 1);
/// assert_eq!(a.addr(40).home(), a.owner(40));
/// ```
#[derive(Clone, Copy, Debug)]
pub struct SharedArray {
    array_id: u32,
    blocks: u32,
    nodes: u16,
    mapping: Mapping,
}

impl SharedArray {
    /// Creates an array descriptor.
    ///
    /// # Panics
    ///
    /// Panics if `blocks == 0`, `nodes == 0`, or `array_id >= 512`
    /// (the id shares the 29-bit block-offset space).
    pub fn new(array_id: u32, blocks: u32, nodes: u16, mapping: Mapping) -> Self {
        assert!(blocks > 0 && nodes > 0);
        assert!(array_id < 512, "array id field is 9 bits");
        assert!(blocks <= 1 << 13, "array limited to 8192 blocks (1 MB)");
        SharedArray {
            array_id,
            blocks,
            nodes,
            mapping,
        }
    }

    /// Number of blocks.
    pub fn blocks(&self) -> u32 {
        self.blocks
    }

    /// The node owning block `b` under the contiguous partition.
    pub fn owner(&self, b: u32) -> NodeId {
        debug_assert!(b < self.blocks);
        NodeId::new((b as u64 * self.nodes as u64 / self.blocks as u64) as u16)
    }

    /// The contiguous range of blocks owned by `node`.
    pub fn owned_range(&self, node: NodeId) -> std::ops::Range<u32> {
        let n = self.nodes as u64;
        let b = self.blocks as u64;
        let i = node.index() as u64;
        let start = (i * b).div_ceil(n) as u32;
        let end = ((i + 1) * b).div_ceil(n) as u32;
        start..end.min(self.blocks)
    }

    /// The home node of block `b` under this array's mapping.
    pub fn home(&self, b: u32) -> NodeId {
        match self.mapping {
            Mapping::Partitioned => self.owner(b),
            Mapping::Unmapped => {
                // Deterministic bit-mixing hash (SplitMix64 finalizer) so
                // placement is uncorrelated with any partition stride.
                let mut h = (b as u64) ^ ((self.array_id as u64) << 32);
                h = (h ^ (h >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
                h = (h ^ (h >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
                h ^= h >> 31;
                NodeId::new((h % self.nodes as u64) as u16)
            }
        }
    }

    /// The DSM address of block `b`.
    pub fn addr(&self, b: u32) -> Addr {
        debug_assert!(b < self.blocks);
        Addr::new(self.home(b), (self.array_id << 13) | b)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn owner_partition_is_contiguous_and_complete() {
        let a = SharedArray::new(1, 100, 7, Mapping::Partitioned);
        let mut count = 0;
        for n in 0..7u16 {
            let r = a.owned_range(NodeId::new(n));
            for b in r.clone() {
                assert_eq!(a.owner(b), NodeId::new(n), "block {b}");
            }
            count += r.len();
        }
        assert_eq!(count, 100);
    }

    #[test]
    fn partitioned_homes_are_owners() {
        let a = SharedArray::new(2, 64, 4, Mapping::Partitioned);
        for b in 0..64 {
            assert_eq!(a.home(b), a.owner(b));
        }
    }

    #[test]
    fn unmapped_homes_are_spread() {
        let a = SharedArray::new(3, 256, 8, Mapping::Unmapped);
        let mut seen = std::collections::HashSet::new();
        for b in 0..256 {
            seen.insert(a.home(b).index());
        }
        assert!(seen.len() >= 6, "hash placement should hit most nodes");
    }

    #[test]
    fn addresses_distinct_across_arrays() {
        let a = SharedArray::new(1, 32, 4, Mapping::Partitioned);
        let b = SharedArray::new(2, 32, 4, Mapping::Partitioned);
        for i in 0..32 {
            assert_ne!(a.addr(i).key(), b.addr(i).key());
        }
    }

    #[test]
    fn addresses_distinct_within_array() {
        let a = SharedArray::new(1, 8000, 4, Mapping::Partitioned);
        let mut keys = std::collections::HashSet::new();
        for i in 0..8000 {
            assert!(keys.insert(a.addr(i).key()), "duplicate addr for {i}");
        }
    }
}
