//! # cenju4 — a reproduction of the Cenju-4 DSM architecture
//!
//! This is the facade crate of a full reproduction of *"A DSM Architecture
//! for a Parallel Computer Cenju-4"* (Hosomi, Kanoh, Nakamura, Hirose;
//! HPCA 2000): a cache-coherent NUMA multiprocessor scalable to 1024
//! nodes, built here as a deterministic discrete-event simulator.
//!
//! The system decomposes into the crates re-exported below:
//!
//! | crate | paper section | contents |
//! |---|---|---|
//! | [`des`] | — | event queue, clock, RNG, statistics |
//! | [`directory`] | §3.1 | pointer + bit-pattern node maps, 64-bit directory entries, baseline schemes, Figure-4 precision analytics |
//! | [`network`] | §3.2 | 4×4-crossbar multistage network with in-switch multicast and reply gathering |
//! | [`protocol`] | §2, §3.3–3.4 + appendix | coherence protocols behind the `CoherenceProtocol` seam (invalidate-based MESI, update-based Dragon), the starvation-free queuing protocol, deadlock-prevention buffers and the Figure-9 graph analysis, nack baseline, user-level message passing, the §4.2.3 update-protocol extension, event tracing |
//! | [`sim`] | §4.1 | latency probes (Table 2, Figure 10), processor driver, barriers, reports |
//! | [`workloads`] | §4.2 | synthetic BT/CG/FT/SP in seq/mpi/dsm(1)/dsm(2) variants |
//!
//! # Quickstart
//!
//! ```
//! use cenju4::prelude::*;
//!
//! // Build a 16-node machine and measure the Table 2 load latencies.
//! let cfg = SystemConfig::new(16)?;
//! let row = cenju4::sim::probes::load_latencies(&cfg);
//! assert_eq!(row.shared_local_clean.as_ns(), 610);
//!
//! // Store latency to a block shared by 8 nodes (Figure 10's x=8 point).
//! let lat = cenju4::sim::probes::store_latency(&cfg, 8);
//! assert!(lat.as_ns() > row.shared_local_clean.as_ns());
//! # Ok::<(), cenju4::directory::SystemSizeError>(())
//! ```

pub use cenju4_des as des;
pub use cenju4_directory as directory;
pub use cenju4_network as network;
pub use cenju4_obs as obs;
pub use cenju4_protocol as protocol;
pub use cenju4_sim as sim;
pub use cenju4_workloads as workloads;

/// The most commonly used types, for `use cenju4::prelude::*`.
///
/// Built on [`cenju4_sim::prelude`] — the simulation stack's single
/// import path — plus the directory-analytics, raw-fabric, and workload
/// types that only full-system consumers need.
pub mod prelude {
    pub use cenju4_sim::prelude::*;

    pub use cenju4_directory::{BitPattern, Cenju4NodeMap, DirectoryEntry, NodeMap};
    pub use cenju4_network::Fabric;
    pub use cenju4_workloads::{AppKind, Variant};
}

#[cfg(test)]
mod tests {
    #[test]
    fn facade_reexports_compile() {
        use crate::prelude::*;
        let sys = SystemSize::new(16).unwrap();
        assert_eq!(sys.stages(), 2);
        let _ = SystemConfig::new(16).unwrap();
    }

    /// The protocol/directory seam types reach the facade prelude: the
    /// selector enums, the trait objects behind them, and the builder
    /// spec all resolve from `cenju4::prelude::*` alone.
    #[test]
    fn facade_reexports_the_seam_types() {
        use crate::prelude::*;
        let proto: &'static dyn CoherenceProtocol = ProtocolId::Dragon.protocol();
        assert_eq!(proto.name(), "dragon");
        let fmt: &'static dyn DirectoryFormat = DirectoryId::CoarseVector.format();
        assert_eq!(fmt.name(), "coarse-vector");
        let _: SharerSet = DirectoryId::FullMap.instantiate(SystemSize::new(16).unwrap());
        let spec: ProtocolSpec = (ProtocolId::Dragon, ProtocolKind::Queuing).into();
        let cfg = SystemConfig::builder(16)
            .protocol(spec)
            .directory(DirectoryId::FullMap)
            .build()
            .unwrap();
        assert_eq!(cfg.coherence, ProtocolId::Dragon);
        assert_eq!(cfg.directory, DirectoryId::FullMap);
        let _: AccessDecision = proto.classify(MemOp::Load, CacheState::Shared);
    }
}
