//! Cross-protocol × directory-format oracle matrix: every coherence
//! protocol paired with every engine-backed sharer-set format must keep
//! the full oracle suite green — SWMR, directory agreement, value
//! coherence (membership-relaxed under Dragon), queue bounds, and a
//! span-leak-free quiescence.
//!
//! Exhaustive exploration is tractable on the 2-node scenario; the
//! 3-node scenarios (where invalidations and update pushes actually
//! cross the fabric to a third party) use seeded — hence deterministic —
//! random walks, like the delay-inval mutant test.

use cenju4_check::{exhaustive, random_walks, replay, CheckConfig, Exploration, ExploreLimits};
use cenju4_directory::DirectoryId;
use cenju4_protocol::ProtocolId;

fn limits() -> ExploreLimits {
    ExploreLimits {
        max_steps: 5_000,
        max_schedules: 200_000,
        max_seconds: 120,
    }
}

/// Every (protocol, directory) pair as a scenario patch.
fn pairs() -> Vec<(ProtocolId, DirectoryId)> {
    let mut out = Vec::new();
    for &coherence in &ProtocolId::ALL {
        for &directory in &DirectoryId::ALL {
            out.push((coherence, directory));
        }
    }
    out
}

/// Bounded-exhaustive DFS over the default 2-node/1-block scenario for
/// every pair: every schedule of every variant keeps all oracles green.
#[test]
fn exhaustive_matrix_is_green() {
    for (coherence, directory) in pairs() {
        let cfg = CheckConfig {
            coherence,
            directory,
            ..CheckConfig::default()
        };
        match exhaustive(&cfg, &limits()) {
            Exploration::AllGreen { schedules } => {
                assert!(
                    schedules > 100,
                    "({coherence}, {directory}): suspiciously small schedule space"
                );
            }
            other => panic!("({coherence}, {directory}): expected all green, got {other:?}"),
        }
    }
}

/// Three nodes, two blocks: invalidations/update pushes reach a sharer
/// remote from both home and writer. Seeded walks per pair, all green —
/// which includes the quiescence + span-leak oracles on every walk.
#[test]
fn three_node_matrix_walks_are_green() {
    for (coherence, directory) in pairs() {
        let cfg = CheckConfig {
            nodes: 3,
            blocks: 2,
            coherence,
            directory,
            ..CheckConfig::default()
        };
        match random_walks(&cfg, 0x3A7D, 40, &limits()) {
            Exploration::AllGreen { schedules } => assert_eq!(schedules, 40),
            other => panic!("({coherence}, {directory}): expected green walks, got {other:?}"),
        }
    }
}

/// The natural (all-zero) schedule quiesces green for every pair at
/// 3 nodes — the production event order is sound under every variant.
#[test]
fn natural_schedule_is_green_for_every_pair() {
    for (coherence, directory) in pairs() {
        let cfg = CheckConfig {
            nodes: 3,
            blocks: 2,
            coherence,
            directory,
            ..CheckConfig::default()
        };
        let out = replay(&cfg, &[], 5_000);
        assert!(
            out.ok(),
            "({coherence}, {directory}) natural schedule violated: {:?}",
            out.violation
        );
    }
}

/// The checker's teeth survive the seam: the reservation mutant is still
/// killed under Dragon — the update protocol leans on the same parked-
/// request wakeup discipline, so the oracles must still catch its loss.
#[test]
fn reservation_mutant_is_killed_under_dragon() {
    let cfg = CheckConfig {
        coherence: ProtocolId::Dragon,
        fault: cenju4_protocol::FaultInjection::DisableReservation,
        ..CheckConfig::default()
    };
    match exhaustive(&cfg, &limits()) {
        Exploration::Falsified(cx) => {
            // The counterexample's replay command carries the protocol
            // flag, so the variant reproduces from the printed line.
            assert!(
                format!("{cx}").contains("--protocol dragon"),
                "replay command lost the protocol flag"
            );
        }
        other => panic!("reservation mutant survived under dragon: {other:?}"),
    }
}
