//! Acceptance tests for the schedule-exploring checker: the correct
//! protocol survives exhaustive exploration, and each seeded mutant is
//! killed with a shrunk, deterministically replayable counterexample.

use cenju4_check::{
    exhaustive, explore_reduced, explore_reduced_with, random_walks, replay, CheckConfig,
    Exploration, ExploreLimits,
};
use cenju4_protocol::FaultInjection;

fn limits() -> ExploreLimits {
    ExploreLimits {
        max_steps: 5_000,
        max_schedules: 200_000,
        max_seconds: 120,
    }
}

/// The ISSUE's headline acceptance criterion: every schedule of the
/// 2-node/1-block scenario keeps all oracles green.
#[test]
fn exhaustive_two_node_one_block_is_green() {
    let cfg = CheckConfig::default(); // 2 nodes, 1 block, 2 ops, no fault
    match exhaustive(&cfg, &limits()) {
        Exploration::AllGreen { schedules } => {
            assert!(schedules > 100, "suspiciously small schedule space");
        }
        other => panic!("expected all-green exhaustive run, got {other:?}"),
    }
}

/// Seeded random walks on a larger scenario stay green and are
/// reproducible run to run.
#[test]
fn random_walks_are_green_and_deterministic() {
    let cfg = CheckConfig {
        nodes: 3,
        blocks: 2,
        ..CheckConfig::default()
    };
    for _ in 0..2 {
        match random_walks(&cfg, 42, 50, &limits()) {
            Exploration::AllGreen { schedules } => assert_eq!(schedules, 50),
            other => panic!("expected green walks, got {other:?}"),
        }
    }
}

fn assert_mutant_killed(fault: FaultInjection) {
    let cfg = CheckConfig {
        fault,
        ..CheckConfig::default()
    };
    let cx = match exhaustive(&cfg, &limits()) {
        Exploration::Falsified(cx) => cx,
        other => panic!("mutant {fault} survived: {other:?}"),
    };
    // The schedule is shrunk: no trailing zeros (they are implicit).
    assert_ne!(cx.schedule.last(), Some(&0), "unshrunk schedule");
    // It replays deterministically to the same violation, twice.
    let a = replay(&cfg, &cx.schedule, limits().max_steps);
    let b = replay(&cfg, &cx.schedule, limits().max_steps);
    assert_eq!(a.violation, b.violation, "replay is nondeterministic");
    assert_eq!(
        a.violation.as_ref(),
        Some(&cx.violation),
        "replay does not reproduce the reported violation"
    );
    // The counterexample renders a protocol trace for debugging. (Kills
    // via an internal panic cannot: the engine is gone by then.)
    if cx.violation.oracle != "panic" {
        assert!(!cx.trace.is_empty(), "counterexample lost its trace");
    }
}

/// Disabling the Section-3.3 reservation bit must be caught: parked
/// requests are never woken, so some transaction never graduates.
#[test]
fn reservation_mutant_is_killed() {
    assert_mutant_killed(FaultInjection::DisableReservation);
}

/// Disabling the Figure-9 spill path must be caught: the dropped request's
/// transaction never completes.
#[test]
fn spill_mutant_is_killed() {
    assert_mutant_killed(FaultInjection::DropSpilledRequests);
}

/// The all-zero schedule is the production order and must quiesce green.
#[test]
fn natural_schedule_replays_green() {
    let out = replay(&CheckConfig::default(), &[], 5_000);
    assert!(out.ok(), "natural schedule violated: {:?}", out.violation);
    assert!(out.steps > 0);
}

/// Dropping the first reply on the wire must be caught with recovery off:
/// the transaction never graduates, so quiescence is violated.
#[test]
fn drop_unicast_mutant_is_killed() {
    assert_mutant_killed(FaultInjection::DropUnicast);
}

/// A spuriously duplicated reply must be caught with recovery off: the
/// second copy reaches a master that already retired the transaction.
#[test]
fn dup_reply_mutant_is_killed() {
    assert_mutant_killed(FaultInjection::DupReply);
}

/// A delayed duplicate invalidation must be caught with recovery off: the
/// slave acknowledges twice and the home's bookkeeping breaks. Needs a
/// third node — in a 2-node machine the only sharer besides the writer is
/// the home itself, so no invalidation ever crosses the fabric. The
/// 3-node schedule space is too large to exhaust, so this uses seeded
/// (deterministic) random walks.
#[test]
fn delay_inval_mutant_is_killed() {
    let cfg = CheckConfig {
        nodes: 3,
        fault: FaultInjection::DelayInval,
        ..CheckConfig::default()
    };
    let cx = match random_walks(&cfg, 0x1D1A, 200, &limits()) {
        Exploration::Falsified(cx) => cx,
        other => panic!("mutant delay-inval survived: {other:?}"),
    };
    // It replays deterministically to the same violation.
    let a = replay(&cfg, &cx.schedule, limits().max_steps);
    assert_eq!(
        a.violation.as_ref(),
        Some(&cx.violation),
        "replay does not reproduce the reported violation"
    );
}

const FABRIC_MUTANTS: [FaultInjection; 3] = [
    FaultInjection::DropUnicast,
    FaultInjection::DupReply,
    FaultInjection::DelayInval,
];

/// With the recovery layer armed, every fabric mutant is *tolerated*:
/// the natural schedule and seeded random walks all reach quiescence with
/// coherent values. (Random walks with a fixed seed are deterministic, so
/// this is a stable oracle, not a flaky one.) Three nodes, because the
/// interesting recoveries — an invalidation racing a retransmitted
/// reply on a shared link — need a sharer that is remote from the home.
#[test]
fn fabric_mutants_recovered_when_armed() {
    for fault in FABRIC_MUTANTS {
        let cfg = CheckConfig {
            fault,
            recovery: true,
            nodes: 3,
            ..CheckConfig::default()
        };
        let out = replay(&cfg, &[], limits().max_steps);
        assert!(
            out.ok(),
            "natural schedule under {fault} with recovery on violated: {:?}",
            out.violation
        );
        match random_walks(&cfg, 0xFA11, 30, &limits()) {
            Exploration::AllGreen { schedules } => assert_eq!(schedules, 30),
            other => panic!("recovery failed to mask {fault}: {other:?}"),
        }
    }
}

/// Bounded probabilistic loss (10% per message) with recovery armed:
/// seeded random walks reach quiescence with coherent values, and the
/// whole exploration is deterministic (fixed fault seed + walk seed).
#[test]
fn probabilistic_drops_recovered_when_armed() {
    let cfg = CheckConfig {
        recovery: true,
        fault_seed: 99,
        drop_permille: 100,
        ..CheckConfig::default()
    };
    match random_walks(&cfg, 0xD20F, 30, &limits()) {
        Exploration::AllGreen { schedules } => assert_eq!(schedules, 30),
        other => panic!("recovery failed under probabilistic drops: {other:?}"),
    }
}

/// The same probabilistic loss with recovery *off* is falsified: some
/// message is gone for good and its transaction never graduates.
#[test]
fn probabilistic_drops_falsified_when_unarmed() {
    let cfg = CheckConfig {
        recovery: false,
        fault_seed: 99,
        drop_permille: 400,
        ..CheckConfig::default()
    };
    match random_walks(&cfg, 0xD20F, 30, &limits()) {
        Exploration::Falsified(_) => {}
        other => panic!("40% loss with no recovery went undetected: {other:?}"),
    }
}

/// A node that silently dies mid-run must be caught with recovery off:
/// every frame touching it vanishes, its transactions never graduate,
/// and quiescence is violated. Three nodes so traffic keeps flowing
/// around the casualty (the plan kills node 1).
#[test]
fn node_down_mutant_is_killed() {
    let cfg = CheckConfig {
        nodes: 3,
        fault: FaultInjection::NodeDown,
        recovery: false,
        ..CheckConfig::default()
    };
    let cx = match random_walks(&cfg, 0xDEAD, 200, &limits()) {
        Exploration::Falsified(cx) => cx,
        other => panic!("mutant node-down survived: {other:?}"),
    };
    let a = replay(&cfg, &cx.schedule, limits().max_steps);
    assert_eq!(
        a.violation.as_ref(),
        Some(&cx.violation),
        "replay does not reproduce the reported violation"
    );
}

/// Neutering quarantine (the detector suspects the dead node but lets it
/// fall back to Up) must be caught *with recovery armed*: the stranded
/// retransmissions burn a budget and the typed escalation is the wrong
/// one, so the recovery oracle fires. This is the mutant that proves the
/// quarantine step itself carries its weight.
#[test]
fn quarantine_off_mutant_is_killed() {
    let cfg = CheckConfig {
        nodes: 3,
        fault: FaultInjection::QuarantineOff,
        recovery: true,
        ..CheckConfig::default()
    };
    let cx = match random_walks(&cfg, 0xDEAD, 200, &limits()) {
        Exploration::Falsified(cx) => cx,
        other => panic!("mutant quarantine-off survived: {other:?}"),
    };
    assert_eq!(cx.violation.oracle, "recovery", "{}", cx.violation);
    let a = replay(&cfg, &cx.schedule, limits().max_steps);
    assert_eq!(
        a.violation.as_ref(),
        Some(&cx.violation),
        "replay does not reproduce the reported violation"
    );
}

/// With the recovery layer armed, a mid-run node death is *contained*:
/// the detector quarantines the casualty, homes scrub it from every
/// directory entry, masters targeting it escalate typed
/// `NodeUnavailable` errors, and every surviving transaction graduates.
/// Two blocks so one is homed *at* the casualty, exercising the
/// dead-home escalation path alongside the dead-sharer scrub path.
#[test]
fn node_down_contained_when_armed() {
    let cfg = CheckConfig {
        nodes: 3,
        blocks: 2,
        fault: FaultInjection::NodeDown,
        recovery: true,
        ..CheckConfig::default()
    };
    let out = replay(&cfg, &[], limits().max_steps);
    assert!(
        out.ok(),
        "natural schedule under node-down with recovery on violated: {:?}",
        out.violation
    );
    match random_walks(&cfg, 0xFA11, 30, &limits()) {
        Exploration::AllGreen { schedules } => assert_eq!(schedules, 30),
        other => panic!("quarantine failed to contain node-down: {other:?}"),
    }
}

/// Span-leak regression for death mid-gather: maximal sharing on one
/// block means the dying node is a sharer in some open invalidation
/// gather on most schedules. The quarantine scrub must complete those
/// gathers (treating the dead sharer as invalidated) and the span-leak
/// oracle — open spans at quiescence — must stay green on every walk.
#[test]
fn node_death_mid_gather_cannot_leak_spans() {
    let cfg = CheckConfig {
        nodes: 3,
        blocks: 1,
        ops_per_node: 3,
        fault: FaultInjection::NodeDown,
        recovery: true,
        ..CheckConfig::default()
    };
    match random_walks(&cfg, 0x6A7E, 40, &limits()) {
        Exploration::AllGreen { schedules } => assert_eq!(schedules, 40),
        other => panic!("mid-gather death leaked state: {other:?}"),
    }
}

/// Hot-path flattening guard: the bounded-exhaustive DFS on the default
/// 2-node/1-block scenario must visit *exactly* the same schedule space
/// before and after the dense-table/shared-payload optimization. A
/// changed schedule count means the held-set or channel-readiness
/// semantics moved; a changed per-run step count means the event
/// sequence itself did. Pinned on the map-keyed engine — do not update
/// these numbers in an optimization PR.
#[test]
fn exhaustive_schedule_space_is_pinned() {
    let cfg = CheckConfig::default();
    match exhaustive(&cfg, &limits()) {
        Exploration::AllGreen { schedules } => assert_eq!(schedules, 9298),
        other => panic!("expected all-green exhaustive run, got {other:?}"),
    }
    // Two fixed schedules through the same space: first-ready and
    // last-ready picks, with their exact step counts.
    let natural = cenju4_check::run_one(&cfg, |_| 0, 5_000);
    assert!(natural.ok(), "natural schedule must stay green");
    assert_eq!((natural.steps, natural.choices.len()), (16, 16));
    let reversed = cenju4_check::run_one(&cfg, |n| n.saturating_sub(1), 5_000);
    assert!(reversed.ok(), "last-ready schedule must stay green");
    assert_eq!((reversed.steps, reversed.choices.len()), (10, 10));
}

/// The reduced explorer's pins, next to the 9298 pin above. The
/// unreduced DFS must visit exactly the schedule space the lexicographic
/// enumeration visits (9298 leaves — a cross-validation of the frontier
/// partition), and the reduced walk must collapse it to the pinned
/// state/leaf counts. A changed reduced count means the independence
/// relation, the fingerprint, or the sleep-set discipline moved — treat
/// it like the 9298 pin, not like noise.
#[test]
fn reduced_schedule_space_is_pinned() {
    let cfg = CheckConfig::default();
    let full = explore_reduced_with(&cfg, &limits(), 2, false);
    assert!(!full.reduced);
    assert_eq!(full.leaves, 9298, "unreduced DFS diverged from exhaustive");
    match full.exploration {
        Exploration::AllGreen { schedules } => assert_eq!(schedules, 9298),
        other => panic!("expected all-green unreduced run, got {other:?}"),
    }
    let red = explore_reduced(&cfg, &limits(), 2);
    assert!(red.reduced);
    match red.exploration {
        Exploration::AllGreen { schedules } => assert_eq!(schedules, red.leaves),
        other => panic!("expected all-green reduced run, got {other:?}"),
    }
    assert_eq!(
        (red.unique_states, red.leaves),
        (105, 4),
        "the reduced state space moved"
    );
}

/// The protocol mutants die under the reduced explorer too, and the
/// counterexample still replays deterministically — reduction must not
/// cost the checker its teeth or its reproducibility.
#[test]
fn mutants_killed_under_reduced_explorer() {
    for fault in [
        FaultInjection::DisableReservation,
        FaultInjection::DropSpilledRequests,
    ] {
        let cfg = CheckConfig {
            fault,
            ..CheckConfig::default()
        };
        let out = explore_reduced(&cfg, &limits(), 2);
        assert!(out.reduced, "protocol mutants should be reducible");
        let cx = match out.exploration {
            Exploration::Falsified(cx) => cx,
            other => panic!("mutant {fault} survived reduction: {other:?}"),
        };
        let a = replay(&cfg, &cx.schedule, limits().max_steps);
        assert_eq!(
            a.violation.as_ref(),
            Some(&cx.violation),
            "mutant {fault}: reduced counterexample does not replay"
        );
    }
}

/// The fabric mutants are ineligible for reduction (their one-shot
/// fault counters are order-dependent global state); the reduced entry
/// point must still kill them through the unreduced parallel path.
#[test]
fn fabric_mutants_killed_under_parallel_unreduced_explorer() {
    for fault in [FaultInjection::DropUnicast, FaultInjection::DupReply] {
        let cfg = CheckConfig {
            fault,
            ..CheckConfig::default()
        };
        let out = explore_reduced(&cfg, &limits(), 4);
        assert!(!out.reduced, "fabric mutants must not be reduced");
        let cx = match out.exploration {
            Exploration::Falsified(cx) => cx,
            other => panic!("mutant {fault} survived: {other:?}"),
        };
        let a = replay(&cfg, &cx.schedule, limits().max_steps);
        assert_eq!(
            a.violation.as_ref(),
            Some(&cx.violation),
            "mutant {fault}: counterexample does not replay"
        );
    }
}

/// Satellite guard: a fault that cannot fire under the config is a hard
/// validation error, not a hollow green run.
#[test]
fn unreachable_fault_configs_are_rejected() {
    let starved = CheckConfig {
        nodes: 2,
        fault: FaultInjection::NodeDown,
        ..CheckConfig::default()
    };
    let err = starved.validate().expect_err("node-down at 2 nodes passed");
    assert!(err.contains("at least 3"), "no valid range in: {err}");
    let unarmed = CheckConfig {
        nodes: 3,
        fault: FaultInjection::QuarantineOff,
        recovery: false,
        ..CheckConfig::default()
    };
    let err = unarmed
        .validate()
        .expect_err("quarantine-off sans recovery");
    assert!(err.contains("recovery"), "no recovery hint in: {err}");
    assert!(CheckConfig::default().validate().is_ok());
    assert!(CheckConfig {
        nodes: 3,
        fault: FaultInjection::NodeDown,
        ..CheckConfig::default()
    }
    .validate()
    .is_ok());
}
