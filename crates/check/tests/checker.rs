//! Acceptance tests for the schedule-exploring checker: the correct
//! protocol survives exhaustive exploration, and each seeded mutant is
//! killed with a shrunk, deterministically replayable counterexample.

use cenju4_check::{exhaustive, random_walks, replay, CheckConfig, Exploration, ExploreLimits};
use cenju4_protocol::FaultInjection;

fn limits() -> ExploreLimits {
    ExploreLimits {
        max_steps: 5_000,
        max_schedules: 200_000,
        max_seconds: 120,
    }
}

/// The ISSUE's headline acceptance criterion: every schedule of the
/// 2-node/1-block scenario keeps all oracles green.
#[test]
fn exhaustive_two_node_one_block_is_green() {
    let cfg = CheckConfig::default(); // 2 nodes, 1 block, 2 ops, no fault
    match exhaustive(&cfg, &limits()) {
        Exploration::AllGreen { schedules } => {
            assert!(schedules > 100, "suspiciously small schedule space");
        }
        other => panic!("expected all-green exhaustive run, got {other:?}"),
    }
}

/// Seeded random walks on a larger scenario stay green and are
/// reproducible run to run.
#[test]
fn random_walks_are_green_and_deterministic() {
    let cfg = CheckConfig {
        nodes: 3,
        blocks: 2,
        ..CheckConfig::default()
    };
    for _ in 0..2 {
        match random_walks(&cfg, 42, 50, &limits()) {
            Exploration::AllGreen { schedules } => assert_eq!(schedules, 50),
            other => panic!("expected green walks, got {other:?}"),
        }
    }
}

fn assert_mutant_killed(fault: FaultInjection) {
    let cfg = CheckConfig {
        fault,
        ..CheckConfig::default()
    };
    let cx = match exhaustive(&cfg, &limits()) {
        Exploration::Falsified(cx) => cx,
        other => panic!("mutant {fault} survived: {other:?}"),
    };
    // The schedule is shrunk: no trailing zeros (they are implicit).
    assert_ne!(cx.schedule.last(), Some(&0), "unshrunk schedule");
    // It replays deterministically to the same violation, twice.
    let a = replay(&cfg, &cx.schedule, limits().max_steps);
    let b = replay(&cfg, &cx.schedule, limits().max_steps);
    assert_eq!(a.violation, b.violation, "replay is nondeterministic");
    assert_eq!(
        a.violation.as_ref(),
        Some(&cx.violation),
        "replay does not reproduce the reported violation"
    );
    // The counterexample renders a protocol trace for debugging.
    assert!(!cx.trace.is_empty(), "counterexample lost its trace");
}

/// Disabling the Section-3.3 reservation bit must be caught: parked
/// requests are never woken, so some transaction never graduates.
#[test]
fn reservation_mutant_is_killed() {
    assert_mutant_killed(FaultInjection::DisableReservation);
}

/// Disabling the Figure-9 spill path must be caught: the dropped request's
/// transaction never completes.
#[test]
fn spill_mutant_is_killed() {
    assert_mutant_killed(FaultInjection::DropSpilledRequests);
}

/// The all-zero schedule is the production order and must quiesce green.
#[test]
fn natural_schedule_replays_green() {
    let out = replay(&CheckConfig::default(), &[], 5_000);
    assert!(out.ok(), "natural schedule violated: {:?}", out.violation);
    assert!(out.steps > 0);
}
