//! DPOR soundness harness: partial-order reduction and state dedup must
//! not change what the checker can *see*. For every (protocol,
//! directory) pair the reduced and unreduced explorations of the same
//! scenario must reach identical verdicts — the same set of falsified
//! oracle names on terminating spaces, and the same kill on the
//! reservation mutant.
//!
//! The comparison runs collect-all: every violating path is cut at its
//! violation and the search continues, so the result is the full set of
//! oracle names falsifiable anywhere in the schedule space, not just the
//! DFS-first one (which reduction legitimately reorders).

use cenju4_check::{
    dpor_eligible, explore_reduced_with, violation_profile, CheckConfig, Exploration, ExploreLimits,
};
use cenju4_directory::DirectoryId;
use cenju4_protocol::{FaultInjection, ProtocolId};

fn limits() -> ExploreLimits {
    ExploreLimits {
        max_steps: 5_000,
        max_schedules: 200_000,
        max_seconds: 120,
    }
}

/// Every (protocol, directory) pair as a scenario patch.
fn pairs() -> Vec<(ProtocolId, DirectoryId)> {
    let mut out = Vec::new();
    for &coherence in &ProtocolId::ALL {
        for &directory in &DirectoryId::ALL {
            out.push((coherence, directory));
        }
    }
    out
}

fn assert_profiles_match(fault: FaultInjection) {
    for (coherence, directory) in pairs() {
        let cfg = CheckConfig {
            coherence,
            directory,
            fault,
            ..CheckConfig::default()
        };
        assert!(
            dpor_eligible(&cfg),
            "({coherence}, {directory}, {fault}) should be reducible"
        );
        let reduced = violation_profile(&cfg, &limits(), 2, true);
        let full = violation_profile(&cfg, &limits(), 2, false);
        assert_eq!(
            reduced, full,
            "({coherence}, {directory}, {fault}): reduction changed the \
             set of falsifiable oracles"
        );
    }
}

/// On the correct protocol both explorations see an empty violation set
/// for every pair — reduction cannot invent a counterexample.
#[test]
fn reduction_is_sound_on_the_correct_protocol() {
    assert_profiles_match(FaultInjection::None);
}

/// On the spill-dropping mutant both explorations see the same
/// falsified-oracle set for every pair — reduction cannot *hide* a
/// counterexample either.
#[test]
fn reduction_preserves_spill_mutant_violations() {
    assert_profiles_match(FaultInjection::DropSpilledRequests);
}

/// The reservation mutant starves transactions; both explorers must kill
/// it for every pair. (Profile equality is checked through the same
/// collect-all path as above; this additionally pins the Falsified
/// verdict and a nonempty shrunk schedule from each explorer.)
#[test]
fn both_explorers_kill_the_reservation_mutant() {
    for (coherence, directory) in pairs() {
        let cfg = CheckConfig {
            coherence,
            directory,
            fault: FaultInjection::DisableReservation,
            ..CheckConfig::default()
        };
        for reduce in [true, false] {
            let out = explore_reduced_with(&cfg, &limits(), 2, reduce);
            match out.exploration {
                Exploration::Falsified(cx) => {
                    assert!(
                        !cx.schedule.is_empty(),
                        "({coherence}, {directory}, reduce={reduce}): \
                         empty counterexample schedule"
                    );
                }
                other => panic!(
                    "({coherence}, {directory}, reduce={reduce}): \
                     reservation mutant survived: {other:?}"
                ),
            }
        }
        let reduced = violation_profile(&cfg, &limits(), 2, true);
        let full = violation_profile(&cfg, &limits(), 2, false);
        assert_eq!(
            reduced, full,
            "({coherence}, {directory}): reduction changed the reservation \
             mutant's falsifiable-oracle set"
        );
    }
}

/// Ineligible configurations (nack retries, recovery timers, lossy
/// fabric, fabric fault plans) must refuse to arm reduction even when
/// asked — their transition systems are not captured by the fingerprint.
#[test]
fn ineligible_configs_never_reduce() {
    let base = CheckConfig::default();
    let ineligible = [
        CheckConfig {
            kind: cenju4_protocol::ProtocolKind::Nack,
            ..base
        },
        CheckConfig {
            recovery: true,
            ..base
        },
        CheckConfig {
            drop_permille: 100,
            ..base
        },
        CheckConfig {
            fault: FaultInjection::DropUnicast,
            ..base
        },
    ];
    for cfg in ineligible {
        assert!(!dpor_eligible(&cfg), "{cfg} should not be reducible");
        let out = explore_reduced_with(&cfg, &limits(), 2, true);
        assert!(!out.reduced, "{cfg} armed reduction despite ineligibility");
    }
}
