//! Property tests for the independence relation the DPOR layer is built
//! on: `PendingEvent::footprint()` / `commutes_with()`.
//!
//! Two properties, checked over every state along a family of driven
//! schedules (not hand-picked states):
//!
//! * **No false commutes.** A pair of ready events whose footprints
//!   overlap — same firing node, same block address, same gather, or
//!   either one outside the channel-ordering guarantee — is never
//!   marked commuting.
//! * **Commuting pairs really commute.** For every pair marked
//!   commuting, firing the two events in either order leads to the same
//!   state fingerprint (the second event is re-found by content after
//!   the first fires, since pending indices shift).

use cenju4_check::CheckConfig;
use cenju4_protocol::{Engine, PendingEvent};

/// Replays `picks` (ready-list positions, clamped like the explorer)
/// from the initial state of `cfg`.
fn replay_engine(cfg: &CheckConfig, picks: &[usize]) -> Engine {
    let mut eng = cfg.engine();
    for &p in picks {
        let ready = ready_events(&eng);
        assert!(!ready.is_empty(), "replay ran past quiescence");
        let (idx, _) = &ready[p.min(ready.len() - 1)];
        eng.run_pending(*idx).expect("ready event vanished");
    }
    eng
}

/// The ready events as (pending-index, event) pairs.
fn ready_events(eng: &Engine) -> Vec<(usize, PendingEvent)> {
    eng.pending_events()
        .into_iter()
        .enumerate()
        .filter(|(_, e)| e.ready)
        .collect()
}

/// Fires the ready event with the given content digest; panics if it is
/// not ready (the property under test says it must be).
fn fire_by_content(eng: &mut Engine, content: u64) {
    let ready = ready_events(eng);
    let (idx, _) = ready
        .iter()
        .find(|(_, e)| e.content == content)
        .expect("commuting partner no longer ready after its pair fired");
    eng.run_pending(*idx).expect("ready event vanished");
}

/// Walks `cfg` with a fixed pick at every step, visiting each state
/// along the way with `visit(prefix, engine)`.
fn walk_states(cfg: &CheckConfig, pick: usize, mut visit: impl FnMut(&[usize], &Engine)) {
    let mut picks: Vec<usize> = Vec::new();
    let mut eng = cfg.engine();
    loop {
        visit(&picks, &eng);
        let ready = ready_events(&eng);
        if ready.is_empty() {
            return;
        }
        let p = pick.min(ready.len() - 1);
        let (idx, _) = &ready[p];
        eng.run_pending(*idx).expect("ready event vanished");
        picks.push(p);
    }
}

fn configs() -> Vec<CheckConfig> {
    vec![
        CheckConfig::default(),
        CheckConfig {
            blocks: 2,
            ..CheckConfig::default()
        },
        CheckConfig {
            nodes: 3,
            blocks: 2,
            ..CheckConfig::default()
        },
        CheckConfig {
            nodes: 4,
            blocks: 3,
            ops_per_node: 1,
            ..CheckConfig::default()
        },
    ]
}

/// Overlapping footprints are never marked commuting, at any state along
/// first-ready and last-ready schedules of several scenarios.
#[test]
fn overlapping_footprints_never_commute() {
    for cfg in configs() {
        for pick in [0, usize::MAX] {
            let mut pairs_seen = 0u32;
            walk_states(&cfg, pick, |_, eng| {
                let ready = ready_events(eng);
                let now = eng.now();
                for (i, (_, a)) in ready.iter().enumerate() {
                    for (_, b) in ready.iter().skip(i + 1) {
                        let fa = a.footprint();
                        let fb = b.footprint();
                        let overlap = fa.node == fb.node
                            || !fa.ordered
                            || !fb.ordered
                            || (fa.addr.is_some() && fa.addr == fb.addr)
                            || (fa.gather.is_some() && fa.gather == fb.gather);
                        if overlap {
                            pairs_seen += 1;
                            assert!(
                                !a.commutes_with(b, now),
                                "{cfg}: overlapping events marked commuting:\
                                 \n  {a:?}\n  {b:?}"
                            );
                        }
                    }
                }
            });
            assert!(pairs_seen > 0, "{cfg}: walk never saw an overlapping pair");
        }
    }
}

/// Every pair marked commuting really commutes: firing in either order
/// reaches the same state fingerprint. Symmetry is checked for free
/// (each unordered pair is tested through both `a.commutes_with(b)` and
/// the both-orders execution).
#[test]
fn commuting_pairs_reach_the_same_state() {
    for cfg in configs() {
        let blocks = cfg.block_addrs();
        for pick in [0, usize::MAX] {
            let mut pairs_seen = 0u32;
            let mut checks: Vec<(Vec<usize>, u64, u64)> = Vec::new();
            walk_states(&cfg, pick, |prefix, eng| {
                let ready = ready_events(eng);
                let now = eng.now();
                for (i, (_, a)) in ready.iter().enumerate() {
                    for (_, b) in ready.iter().skip(i + 1) {
                        if a.commutes_with(b, now) {
                            assert!(
                                b.commutes_with(a, now),
                                "{cfg}: commutes_with is asymmetric"
                            );
                            checks.push((prefix.to_vec(), a.content, b.content));
                        }
                    }
                }
            });
            for (prefix, ca, cb) in checks {
                pairs_seen += 1;
                let mut ab = replay_engine(&cfg, &prefix);
                fire_by_content(&mut ab, ca);
                fire_by_content(&mut ab, cb);
                let mut ba = replay_engine(&cfg, &prefix);
                fire_by_content(&mut ba, cb);
                fire_by_content(&mut ba, ca);
                assert_eq!(
                    ab.state_fingerprint(&blocks),
                    ba.state_fingerprint(&blocks),
                    "{cfg}: commuting pair diverged (prefix {prefix:?})"
                );
            }
            // Single-block scenarios have no commuting pairs (every event
            // touches the one block); multi-block ones must have some.
            if cfg.blocks > 1 {
                assert!(pairs_seen > 0, "{cfg}: walk never saw a commuting pair");
            }
        }
    }
}
