//! Parallel-determinism acceptance: the same exploration run with 1, 2,
//! 4, or 8 worker threads yields the same explored-state counts and the
//! same violation (if any), and the reported counterexample replays.
//! Thread fanning must never change what the checker *says* — only how
//! fast it says it.

use cenju4_check::{
    explore_reduced_with, random_walks, random_walks_parallel, replay, CheckConfig, Exploration,
    ExploreLimits,
};
use cenju4_protocol::FaultInjection;

const THREADS: [usize; 4] = [1, 2, 4, 8];

fn limits() -> ExploreLimits {
    ExploreLimits {
        max_steps: 5_000,
        max_schedules: 200_000,
        max_seconds: 120,
    }
}

fn schedules_of(e: &Exploration) -> u64 {
    match e {
        Exploration::AllGreen { schedules } | Exploration::Budget { schedules } => *schedules,
        Exploration::Falsified(cx) => cx.schedules_explored,
    }
}

/// Green unreduced exploration: identical leaf/transition counts for
/// every thread count (the frontier partition is thread-independent and
/// every job runs to completion).
#[test]
fn unreduced_counts_are_thread_independent() {
    let cfg = CheckConfig::default();
    let baseline = explore_reduced_with(&cfg, &limits(), 1, false);
    assert!(matches!(baseline.exploration, Exploration::AllGreen { .. }));
    for threads in THREADS {
        let out = explore_reduced_with(&cfg, &limits(), threads, false);
        assert_eq!(
            (out.leaves, out.transitions, out.jobs),
            (baseline.leaves, baseline.transitions, baseline.jobs),
            "{threads} threads changed the explored counts"
        );
        assert_eq!(
            schedules_of(&out.exploration),
            schedules_of(&baseline.exploration)
        );
    }
}

/// The reduced walk is sequential by design, so thread count must be a
/// no-op there too — same states, transitions, and verdict.
#[test]
fn reduced_counts_are_thread_independent() {
    let cfg = CheckConfig {
        nodes: 3,
        blocks: 2,
        ops_per_node: 1,
        ..CheckConfig::default()
    };
    let baseline = explore_reduced_with(&cfg, &limits(), 1, true);
    assert!(baseline.reduced);
    for threads in THREADS {
        let out = explore_reduced_with(&cfg, &limits(), threads, true);
        assert_eq!(
            (out.unique_states, out.transitions, out.leaves),
            (
                baseline.unique_states,
                baseline.transitions,
                baseline.leaves
            ),
            "{threads} threads changed the reduced counts"
        );
    }
}

/// A violating unreduced exploration reports the *same* counterexample
/// for every thread count (lowest job index, DFS-first within the job),
/// and that counterexample replays to the reported violation.
#[test]
fn unreduced_violation_is_thread_independent() {
    let cfg = CheckConfig {
        fault: FaultInjection::DropSpilledRequests,
        ..CheckConfig::default()
    };
    let mut first: Option<(Vec<usize>, &'static str)> = None;
    for threads in THREADS {
        let out = explore_reduced_with(&cfg, &limits(), threads, false);
        let cx = match out.exploration {
            Exploration::Falsified(cx) => cx,
            other => panic!("{threads} threads: mutant survived: {other:?}"),
        };
        let a = replay(&cfg, &cx.schedule, limits().max_steps);
        assert_eq!(
            a.violation.as_ref(),
            Some(&cx.violation),
            "{threads} threads: replay does not reproduce the violation"
        );
        match &first {
            None => first = Some((cx.schedule.clone(), cx.violation.oracle)),
            Some((schedule, oracle)) => {
                assert_eq!(
                    (&cx.schedule, cx.violation.oracle),
                    (schedule, *oracle),
                    "{threads} threads reported a different counterexample"
                );
            }
        }
    }
}

/// Parallel random campaigns report exactly what the sequential walk
/// reports: the lowest failing walk index wins regardless of which
/// thread raced past it, so the counterexample (schedule, violation,
/// walk count) matches the sequential result bit for bit.
#[test]
fn parallel_walks_match_sequential_walks() {
    let cfg = CheckConfig {
        nodes: 3,
        fault: FaultInjection::DelayInval,
        ..CheckConfig::default()
    };
    let sequential = match random_walks(&cfg, 0x1D1A, 200, &limits()) {
        Exploration::Falsified(cx) => cx,
        other => panic!("sequential walks missed the mutant: {other:?}"),
    };
    for threads in THREADS {
        let cx = match random_walks_parallel(&cfg, 0x1D1A, 200, &limits(), threads) {
            Exploration::Falsified(cx) => cx,
            other => panic!("{threads} threads missed the mutant: {other:?}"),
        };
        assert_eq!(
            (&cx.schedule, &cx.violation, cx.schedules_explored),
            (
                &sequential.schedule,
                &sequential.violation,
                sequential.schedules_explored
            ),
            "{threads} threads diverged from the sequential campaign"
        );
    }
}

/// Green parallel campaigns complete every walk and say so identically.
#[test]
fn parallel_walks_green_campaign_is_deterministic() {
    let cfg = CheckConfig {
        nodes: 3,
        blocks: 2,
        ..CheckConfig::default()
    };
    for threads in THREADS {
        match random_walks_parallel(&cfg, 42, 64, &limits(), threads) {
            Exploration::AllGreen { schedules } => assert_eq!(schedules, 64),
            other => panic!("{threads} threads: expected green walks, got {other:?}"),
        }
    }
}
