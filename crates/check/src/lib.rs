//! Schedule-exploring checker for the Cenju-4 coherence protocol.
//!
//! The paper's two correctness claims — the queuing protocol is
//! starvation-free (Section 3.3) and the spill-to-memory queues make one
//! physical network deadlock-free (Section 3.4) — hold or fall on
//! *message interleavings*, not timings. The production simulator runs
//! one deterministic schedule; this crate runs the others:
//!
//! * [`scenario`] — tiny closed workloads (2–4 nodes hammering 1–2
//!   blocks) where the controlled scheduler decides every race;
//! * [`oracles`] — invariants evaluated after every step: single-writer/
//!   multiple-reader, directory-vs-cache agreement, data-value coherence,
//!   Figure-9 queue bounds, and global quiescence (no lost or starved
//!   transaction);
//! * [`explore`] — bounded-exhaustive DFS over all schedules for small
//!   configs, seeded random walks for larger ones, counterexample
//!   shrinking, and deterministic replay from a printed choice prefix;
//! * [`reduce`] — the same search at scale: dynamic partial-order
//!   reduction (sleep sets over event footprints), state-fingerprint
//!   deduplication with livelock detection, and a deterministic
//!   parallel frontier — bounded-exhaustive at 4–5 nodes and
//!   million-schedule random campaigns, with reduction proven to
//!   preserve every falsifiable oracle (`tests/dpor_soundness.rs`).
//!
//! The engine hook is `Engine::enable_controlled_schedule`: events park
//! in a held set instead of firing in time order, and the checker picks
//! any *ready* event — one whose per-channel in-order guarantees (network
//! (src, dst) FIFOs, per-processor program order) permit firing — so
//! every explored interleaving is one the real machine could produce.
//!
//! The oracles must also *reject* broken protocols: `FaultInjection`
//! mutants that disable the reservation bit or drop spilled requests each
//! yield a shrunk, replayable counterexample (see `tests/checker.rs` and
//! the `cenju4-check mutants` subcommand).
//!
//! # Examples
//!
//! ```
//! use cenju4_check::{exhaustive, CheckConfig, ExploreLimits, Exploration};
//!
//! let cfg = CheckConfig {
//!     ops_per_node: 1,
//!     ..CheckConfig::default()
//! };
//! let limits = ExploreLimits::default();
//! assert!(matches!(exhaustive(&cfg, &limits), Exploration::AllGreen { .. }));
//! ```

pub mod explore;
pub mod oracles;
pub mod reduce;
pub mod scenario;

pub use explore::{
    exhaustive, random_walks, replay, run_one, shrink, Choice, Counterexample, Exploration,
    ExploreLimits, RunOutcome,
};
pub use oracles::{OracleState, Violation};
pub use reduce::{
    default_check_threads, dpor_eligible, explore_reduced, explore_reduced_with,
    random_walks_parallel, violation_profile, ReducedOutcome,
};
pub use scenario::CheckConfig;
