//! Invariant oracles evaluated after every scheduler step.
//!
//! Each oracle states a property the Cenju-4 protocol must uphold in
//! *every* reachable state — including transient ones, so the checks are
//! phrased to tolerate in-flight messages (the directory may represent a
//! superset of the true sharers, never a subset):
//!
//! * **single-writer/multiple-reader** — at most one Modified/Exclusive
//!   copy machine-wide, and never alongside another readable copy;
//! * **directory agreement** — every readable cached copy is represented
//!   in its home's directory entry;
//! * **value coherence** — all Shared copies carry the same data, and a
//!   Clean block's readable copies match its home memory;
//! * **data freshness** — a completed load observes exactly the value of
//!   the last completed store to that block (or 0); the update-based
//!   Dragon protocol relaxes both value checks to membership tests
//!   (copies may straddle an in-flight update push) and adds a
//!   quiescent-convergence oracle instead;
//! * **bounded queues** — the paper's Figure-9 bounds: per-home request
//!   FIFO and slave spill buffer ≤ `4·nodes`, master input ≤ 4;
//! * **quiescence** — when no events remain, every issued transaction has
//!   graduated, every queue is empty and no gather is left open (nothing
//!   was lost or starved);
//! * **recovery** — the armed recovery layer never exhausts its retry
//!   budget under the bounded fault schedules the checker drives.

use crate::scenario::CheckConfig;
use cenju4_directory::{MemState, NodeId};
use cenju4_obs::SpanCollector;
use cenju4_protocol::{
    Addr, CacheState, Engine, FaultInjection, MemOp, Notification, ProtocolId, RecoveryError,
};
use core::fmt;
use std::collections::HashMap;

/// A falsified invariant.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Violation {
    /// Which oracle fired (a stable short name, e.g. `swmr`).
    pub oracle: &'static str,
    /// Human-readable specifics.
    pub detail: String,
}

impl fmt::Display for Violation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "[{}] {}", self.oracle, self.detail)
    }
}

/// Running oracle state: the workload's blocks plus the store/load
/// history needed by the data-freshness check.
pub struct OracleState {
    blocks: Vec<Addr>,
    nodes: u16,
    /// Protocol under check: the update-based Dragon variant relaxes the
    /// exact freshness/agreement checks to membership tests (see below).
    coherence: ProtocolId,
    /// Value of the last *completed* store per block, in dispatch order.
    last_store: HashMap<Addr, u64>,
    /// Every value a *completed* store wrote per block. Store values are
    /// globally unique (`txn + 1`), so membership in this set still
    /// rejects fabricated or corrupted data.
    store_values: HashMap<Addr, Vec<u64>>,
    /// Whether the scenario deliberately kills a node with the recovery
    /// layer armed. Under that regime `NodeUnavailable` escalations are
    /// the *correct* outcome for transactions stranded on the dead node,
    /// and state/value checks must not read the casualty's frozen caches
    /// or blocks whose home memory went down with it.
    tolerate_node_down: bool,
    /// Graduated accesses seen so far.
    pub completed: usize,
    /// Accesses deliberately abandoned with a typed `NodeUnavailable`
    /// escalation (only ever non-zero when `tolerate_node_down`).
    pub abandoned: usize,
}

impl OracleState {
    /// Fresh oracle state for one scenario run.
    pub fn new(cfg: &CheckConfig) -> Self {
        OracleState {
            blocks: cfg.block_addrs(),
            nodes: cfg.nodes,
            coherence: cfg.coherence,
            last_store: HashMap::new(),
            store_values: HashMap::new(),
            tolerate_node_down: cfg.recovery && cfg.fault == FaultInjection::NodeDown,
            completed: 0,
            abandoned: 0,
        }
    }

    /// True when the oracle must not trust `node`'s cache contents: the
    /// fault plan killed it at some point, freezing (and later cold-
    /// clearing) whatever it held.
    fn casualty(&self, eng: &Engine, node: NodeId) -> bool {
        self.tolerate_node_down && eng.was_ever_down(node)
    }

    /// True when `addr`'s value history is unrecoverable by design: its
    /// home memory died, or a dirty copy was lost on the dead node.
    fn compromised(&self, eng: &Engine, addr: Addr) -> bool {
        self.tolerate_node_down && eng.value_compromised(addr)
    }

    /// The set of values a load of `addr` may legitimately observe under
    /// the update-based protocol: never-written (0), any completed store
    /// (an update may still be in flight toward this reader), or a store
    /// whose update push has reached the reader but whose ack gather has
    /// not yet closed at the home.
    fn dragon_legal_values(&self, eng: &Engine, addr: Addr) -> Vec<u64> {
        let mut legal = vec![0];
        if let Some(vs) = self.store_values.get(&addr) {
            legal.extend_from_slice(vs);
        }
        legal.extend(eng.outstanding_store_values(addr));
        legal
    }

    /// Folds one step's notifications into the history, checking that
    /// every completed load returns the last completed store's value.
    /// Under Dragon the check is a membership test instead: a reader may
    /// observe any completed store's value (its own update push may still
    /// be mid-gather when the load graduates), but never a value no store
    /// wrote.
    pub fn note(&mut self, notes: &[Notification], eng: &Engine) -> Option<Violation> {
        for n in notes {
            if let Notification::RecoveryFailed { error, .. } = n {
                // Under an armed node-down plan a typed `NodeUnavailable`
                // escalation is the contract: the master fails fast
                // instead of burning its retry budget on a quarantined
                // peer. Anything else (a timeout, an exhausted link or
                // gather budget) still means detection was too slow.
                if self.tolerate_node_down && matches!(error, RecoveryError::NodeUnavailable { .. })
                {
                    self.abandoned += 1;
                    continue;
                }
                return Some(Violation {
                    oracle: "recovery",
                    detail: format!("recovery layer exhausted its budget: {error}"),
                });
            }
            if let Notification::Completed {
                node,
                op,
                addr,
                value,
                ..
            } = n
            {
                self.completed += 1;
                match op {
                    MemOp::Store => {
                        self.last_store.insert(*addr, *value);
                        self.store_values.entry(*addr).or_default().push(*value);
                    }
                    MemOp::Load => {
                        // A lost dirty copy (or a dead home) legitimately
                        // leaves survivors reading the last value that
                        // made it to stable memory.
                        if self.compromised(eng, *addr) {
                            continue;
                        }
                        if self.coherence == ProtocolId::Dragon {
                            let legal = self.dragon_legal_values(eng, *addr);
                            if !legal.contains(value) {
                                return Some(Violation {
                                    oracle: "data-freshness",
                                    detail: format!(
                                        "load at {node} on {addr} returned {value}, \
                                         which no store (completed or in flight) wrote"
                                    ),
                                });
                            }
                        } else {
                            let want = self.last_store.get(addr).copied().unwrap_or(0);
                            if *value != want {
                                return Some(Violation {
                                    oracle: "data-freshness",
                                    detail: format!(
                                        "load at {node} on {addr} returned {value}, \
                                         last completed store wrote {want}"
                                    ),
                                });
                            }
                        }
                    }
                }
            }
        }
        None
    }

    /// Evaluates the state oracles against the engine after one step.
    pub fn check_step(&self, eng: &Engine) -> Option<Violation> {
        let nodes: Vec<NodeId> = (0..self.nodes).map(NodeId::new).collect();
        for &addr in &self.blocks {
            // A casualty's cache is frozen from its death until the
            // quarantine scrub cold-clears it; whatever it nominally
            // holds is unreachable and exempt from the state oracles.
            let states: Vec<(NodeId, CacheState)> = nodes
                .iter()
                .filter(|&&n| !self.casualty(eng, n))
                .map(|&n| (n, eng.cache_state(n, addr)))
                .collect();
            let owners: Vec<NodeId> = states
                .iter()
                .filter(|(_, s)| s.writable())
                .map(|(n, _)| *n)
                .collect();
            let readable: Vec<NodeId> = states
                .iter()
                .filter(|(_, s)| s.readable())
                .map(|(n, _)| *n)
                .collect();

            // Single writer, multiple readers.
            if owners.len() > 1 {
                return Some(Violation {
                    oracle: "swmr",
                    detail: format!("{addr}: multiple writable copies at {owners:?}"),
                });
            }
            if owners.len() == 1 && readable.len() > 1 {
                return Some(Violation {
                    oracle: "swmr",
                    detail: format!(
                        "{addr}: writable copy at {} coexists with readers {readable:?}",
                        owners[0]
                    ),
                });
            }

            // Every readable copy is represented in the directory. (The
            // directory may be a superset — silent clean evictions — but
            // never a subset.)
            let dir = eng.directory_sharers(addr);
            for &n in &readable {
                if !dir.contains(&n) {
                    return Some(Violation {
                        oracle: "directory",
                        detail: format!(
                            "{addr}: node {n} holds a readable copy but the \
                             directory represents only {dir:?}"
                        ),
                    });
                }
            }

            // Value coherence. Under the invalidate-based protocol all
            // Shared copies agree exactly, and match a Clean home memory.
            // Under Dragon an update push is applied sharer by sharer, so
            // mid-push the copies legitimately straddle two store values;
            // the check weakens to membership — every readable non-owned
            // copy holds a value some store actually wrote (or the home
            // memory's), never fabricated data.
            if self.compromised(eng, addr) {
                // The block's authoritative value died with the node (a
                // lost dirty copy, or the home memory itself); survivors
                // legitimately carry whatever last reached them.
                continue;
            }
            if self.coherence == ProtocolId::Dragon {
                let mut legal = self.dragon_legal_values(eng, addr);
                legal.push(eng.memory_value(addr));
                for (n, s) in &states {
                    if s.readable() && !s.writable() {
                        let v = eng.cache_value(*n, addr);
                        if !legal.contains(&v) {
                            return Some(Violation {
                                oracle: "value-coherence",
                                detail: format!(
                                    "{addr}: node {n}'s {s} copy holds {v}, \
                                     which no store wrote"
                                ),
                            });
                        }
                    }
                }
            } else {
                let shared_vals: Vec<(NodeId, u64)> = states
                    .iter()
                    .filter(|(_, s)| *s == CacheState::Shared)
                    .map(|(n, _)| (*n, eng.cache_value(*n, addr)))
                    .collect();
                if let Some(&(first_node, first)) = shared_vals.first() {
                    for &(n, v) in &shared_vals[1..] {
                        if v != first {
                            return Some(Violation {
                                oracle: "value-coherence",
                                detail: format!(
                                    "{addr}: Shared copies disagree \
                                     ({first_node}={first}, {n}={v})"
                                ),
                            });
                        }
                    }
                }
                if eng.memory_state(addr) == MemState::Clean {
                    let mem = eng.memory_value(addr);
                    for &(n, v) in &shared_vals {
                        if v != mem {
                            return Some(Violation {
                                oracle: "value-coherence",
                                detail: format!(
                                    "{addr}: Clean memory holds {mem} but node {n}'s \
                                     Shared copy holds {v}"
                                ),
                            });
                        }
                    }
                }
            }
        }

        // Figure-9 queue bounds: 4 outstanding per node bounds every spill
        // structure by 4·nodes.
        let max_out = eng.params().max_outstanding;
        let bound = max_out * self.nodes as usize;
        for &n in &nodes {
            let depth = eng.request_queue_len(n);
            if depth > bound {
                return Some(Violation {
                    oracle: "queue-bound",
                    detail: format!("home {n} request queue depth {depth} exceeds 4n = {bound}"),
                });
            }
        }
        if eng.max_slave_input_depth() > bound as u64 {
            return Some(Violation {
                oracle: "queue-bound",
                detail: format!(
                    "slave input depth {} exceeds 4n = {bound}",
                    eng.max_slave_input_depth()
                ),
            });
        }
        if eng.max_master_input_depth() > max_out as u64 {
            return Some(Violation {
                oracle: "queue-bound",
                detail: format!(
                    "master input depth {} exceeds max_outstanding = {max_out}",
                    eng.max_master_input_depth()
                ),
            });
        }
        None
    }

    /// Evaluates the end-of-run oracles once no events remain: global
    /// quiescence means nothing was lost (the reservation-bit discipline
    /// woke every parked request) and every queue drained.
    pub fn check_quiescent(&self, eng: &Engine, issued: usize) -> Option<Violation> {
        // Every issued access must be accounted for: graduated, or (under
        // a tolerated node-down plan only) deliberately abandoned with a
        // typed escalation. Silent loss is a violation either way.
        if self.completed + self.abandoned != issued {
            return Some(Violation {
                oracle: "quiescence",
                detail: format!(
                    "{} of {issued} accesses graduated ({} abandoned) before \
                     the event set drained — transactions were lost or starved",
                    self.completed, self.abandoned
                ),
            });
        }
        let outstanding = eng.outstanding_txn_count();
        if outstanding != 0 {
            return Some(Violation {
                oracle: "quiescence",
                detail: format!("{outstanding} transactions still outstanding at quiescence"),
            });
        }
        for n in (0..self.nodes).map(NodeId::new) {
            let parked = eng.request_queue_len(n);
            if parked != 0 {
                return Some(Violation {
                    oracle: "quiescence",
                    detail: format!(
                        "home {n} still holds {parked} parked requests at quiescence \
                         — the reservation bit never woke them"
                    ),
                });
            }
            let pending = eng.home_pending_count(n);
            if pending != 0 {
                return Some(Violation {
                    oracle: "quiescence",
                    detail: format!("home {n} still has {pending} pending transactions"),
                });
            }
        }
        let open = eng.open_gathers();
        if open != 0 {
            return Some(Violation {
                oracle: "quiescence",
                detail: format!(
                    "{open} gather(s) still open at quiescence — combining \
                     state for lost replies was never reclaimed"
                ),
            });
        }
        // Dragon convergence: the step-level value check tolerates copies
        // straddling an in-flight update push, but once the machine is
        // quiescent every push has been applied — a Clean block's
        // readable copies must all have converged on the home memory's
        // value. (The in-order (src, dst) delivery channels make this
        // sound: the last update to each sharer cannot be overtaken.)
        if self.coherence == ProtocolId::Dragon {
            for &addr in &self.blocks {
                if eng.memory_state(addr) != MemState::Clean || self.compromised(eng, addr) {
                    continue;
                }
                let mem = eng.memory_value(addr);
                for n in (0..self.nodes).map(NodeId::new) {
                    if self.casualty(eng, n) {
                        continue;
                    }
                    let s = eng.cache_state(n, addr);
                    if s.readable() && !s.writable() && eng.cache_value(n, addr) != mem {
                        return Some(Violation {
                            oracle: "dragon-convergence",
                            detail: format!(
                                "{addr}: quiescent Clean memory holds {mem} but \
                                 node {n}'s {s} copy holds {} — an update push \
                                 was lost or misapplied",
                                eng.cache_value(n, addr)
                            ),
                        });
                    }
                }
            }
        }
        // Span-leak oracle: the scenario engine carries a SpanCollector,
        // and a span left open at quiescence is a transaction that
        // started but never graduated — a leak or a starved request the
        // counters above could miss (e.g. a lost writeback).
        if let Some(col) = eng.observer::<SpanCollector>() {
            let leaked = col.open_span_count();
            if leaked != 0 {
                return Some(Violation {
                    oracle: "span-leak",
                    detail: format!(
                        "{leaked} span(s) still open at quiescence — a \
                         transaction opened a span and never closed it"
                    ),
                });
            }
            // Abandoned accesses that failed fast at issue never open a
            // span, so the per-access floor only binds in fault-free
            // regimes. The leak check above stays exact regardless: an
            // abandonment *closes* its span (class `abandoned`).
            let spans = col.completed_span_count();
            if !self.tolerate_node_down && spans < issued {
                return Some(Violation {
                    oracle: "span-leak",
                    detail: format!(
                        "{spans} completed spans for {issued} issued accesses \
                         — some access never opened a span"
                    ),
                });
            }
        }
        None
    }
}
