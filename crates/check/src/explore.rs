//! Schedule exploration: bounded-exhaustive DFS, seeded random walks,
//! deterministic replay, and counterexample shrinking.
//!
//! A *schedule* is the sequence of choices the checker makes: at each
//! step it looks at the engine's ready events (those whose in-order
//! delivery channels permit firing) and picks one by index into the ready
//! list. Choice 0 is always the event the uncontrolled simulation would
//! fire next, so the all-zero schedule reproduces the production run.
//! Replays are fully deterministic: a config plus a choice prefix (plus
//! implicit zeros past the prefix) pins down the entire execution.

use crate::oracles::{OracleState, Violation};
use crate::scenario::CheckConfig;
use cenju4_des::SplitMix64;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::time::Instant;

/// One schedule decision: how many events were ready, which was fired.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Choice {
    /// Ready events at this step.
    pub arity: usize,
    /// Index (into the ready list) that was fired.
    pub picked: usize,
}

/// The outcome of driving one schedule to quiescence (or failure).
#[derive(Clone, Debug)]
pub struct RunOutcome {
    /// Events fired.
    pub steps: usize,
    /// The full decision record, one entry per step.
    pub choices: Vec<Choice>,
    /// The first falsified invariant, if any.
    pub violation: Option<Violation>,
    /// Per-block protocol trace at the violation point (empty on green
    /// runs); rendered by the engine's `Trace` observer.
    pub trace: String,
}

impl RunOutcome {
    /// Whether every oracle stayed green.
    pub fn ok(&self) -> bool {
        self.violation.is_none()
    }
}

/// Exploration budgets. Every bound is a hard cap; hitting one ends the
/// exploration with [`Exploration::Budget`] rather than an error.
#[derive(Clone, Copy, Debug)]
pub struct ExploreLimits {
    /// Per-schedule step cap; exceeding it is itself reported as a
    /// progress violation (a correct finite workload must quiesce).
    pub max_steps: usize,
    /// Total schedules to try.
    pub max_schedules: u64,
    /// Wall-clock cap in seconds.
    pub max_seconds: u64,
}

impl Default for ExploreLimits {
    fn default() -> Self {
        ExploreLimits {
            max_steps: 10_000,
            max_schedules: 1_000_000,
            max_seconds: 300,
        }
    }
}

/// A shrunk, deterministically replayable failing schedule.
#[derive(Clone, Debug)]
pub struct Counterexample {
    /// The scenario it fails under.
    pub config: CheckConfig,
    /// The minimized choice prefix (zeros past the end are implicit).
    pub schedule: Vec<usize>,
    /// The invariant it falsifies.
    pub violation: Violation,
    /// The per-block protocol trace at the violation point.
    pub trace: String,
    /// Schedules explored before this one was found.
    pub schedules_explored: u64,
}

impl core::fmt::Display for Counterexample {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        writeln!(
            f,
            "counterexample after {} schedules",
            self.schedules_explored
        )?;
        writeln!(f, "  scenario: {}", self.config)?;
        writeln!(f, "  violation: {}", self.violation)?;
        let sched: Vec<String> = self.schedule.iter().map(|c| c.to_string()).collect();
        writeln!(f, "  schedule: {}", sched.join(","))?;
        write!(
            f,
            "  replay: cenju4-check replay --nodes {} --blocks {} --ops {} \
             --protocol {} --fault {}",
            self.config.nodes,
            self.config.blocks,
            self.config.ops_per_node,
            match (self.config.coherence, self.config.kind) {
                (cenju4_protocol::ProtocolId::Dragon, _) => "dragon",
                (_, cenju4_protocol::ProtocolKind::Queuing) => "queuing",
                (_, cenju4_protocol::ProtocolKind::Nack) => "nack",
            },
            self.config.fault,
        )?;
        if self.config.directory != cenju4_directory::DirectoryId::default() {
            write!(f, " --directory {}", self.config.directory)?;
        }
        if self.config.recovery {
            write!(f, " --recovery on")?;
        }
        if self.config.drop_permille > 0 {
            write!(
                f,
                " --fault-seed {} --drop-rate {}",
                self.config.fault_seed, self.config.drop_permille
            )?;
        }
        writeln!(
            f,
            " --schedule {}",
            if sched.is_empty() {
                "-".to_string()
            } else {
                sched.join(",")
            }
        )?;
        if !self.trace.is_empty() {
            writeln!(f, "  trace:")?;
            for line in self.trace.lines() {
                writeln!(f, "    {line}")?;
            }
        }
        Ok(())
    }
}

/// How an exploration ended.
#[derive(Clone, Debug)]
pub enum Exploration {
    /// Every explored schedule kept all oracles green, and the space was
    /// exhausted (exhaustive mode) or the walk count completed (random
    /// mode).
    AllGreen {
        /// Schedules driven to quiescence.
        schedules: u64,
    },
    /// An invariant was falsified; the schedule has been shrunk.
    Falsified(Box<Counterexample>),
    /// A budget cap (schedules or wall clock) ended exploration early
    /// with all oracles green so far.
    Budget {
        /// Schedules driven before the cap hit.
        schedules: u64,
    },
}

impl Exploration {
    /// The counterexample, if one was found.
    pub fn counterexample(&self) -> Option<&Counterexample> {
        match self {
            Exploration::Falsified(cx) => Some(cx),
            _ => None,
        }
    }
}

/// Drives one schedule: `pick(arity)` chooses among the ready events at
/// each step (clamped to the ready count). Panics inside the protocol are
/// caught and reported as violations, so mutants that trip internal
/// assertions still yield counterexamples instead of aborting the search.
pub fn run_one(
    cfg: &CheckConfig,
    mut pick: impl FnMut(usize) -> usize,
    max_steps: usize,
) -> RunOutcome {
    let mut choices: Vec<Choice> = Vec::new();
    let mut steps = 0usize;
    let issued = cfg.issued_ops();
    let result = catch_unwind(AssertUnwindSafe(|| {
        let mut eng = cfg.engine();
        let mut oracle = OracleState::new(cfg);
        loop {
            let pend = eng.pending_events();
            if pend.is_empty() {
                let violation = oracle.check_quiescent(&eng, issued);
                let trace = violation
                    .as_ref()
                    .map(|_| render_trace(&eng, cfg))
                    .unwrap_or_default();
                return (violation, trace);
            }
            if steps >= max_steps {
                return (
                    Some(Violation {
                        oracle: "progress",
                        detail: format!(
                            "no quiescence after {max_steps} steps — the \
                             schedule starves some transaction"
                        ),
                    }),
                    render_trace(&eng, cfg),
                );
            }
            let ready: Vec<usize> = pend
                .iter()
                .enumerate()
                .filter(|(_, e)| e.ready)
                .map(|(i, _)| i)
                .collect();
            debug_assert!(!ready.is_empty(), "non-empty event set with nothing ready");
            let picked = pick(ready.len()).min(ready.len() - 1);
            choices.push(Choice {
                arity: ready.len(),
                picked,
            });
            let notes = eng
                .run_pending(ready[picked])
                .expect("ready event vanished");
            steps += 1;
            if let Some(v) = oracle.note(&notes, &eng) {
                return (Some(v), render_trace(&eng, cfg));
            }
            if let Some(v) = oracle.check_step(&eng) {
                return (Some(v), render_trace(&eng, cfg));
            }
        }
    }));
    match result {
        Ok((violation, trace)) => RunOutcome {
            steps,
            choices,
            violation,
            trace,
        },
        Err(panic) => {
            let msg = panic
                .downcast_ref::<String>()
                .map(String::as_str)
                .or_else(|| panic.downcast_ref::<&str>().copied())
                .unwrap_or("opaque panic payload");
            RunOutcome {
                steps,
                choices,
                violation: Some(Violation {
                    oracle: "panic",
                    detail: format!("protocol panicked: {msg}"),
                }),
                trace: String::new(),
            }
        }
    }
}

pub(crate) fn render_trace(eng: &cenju4_protocol::Engine, cfg: &CheckConfig) -> String {
    let mut out = String::new();
    for addr in cfg.block_addrs() {
        let dump = eng.trace().dump_block(addr);
        if !dump.is_empty() {
            out.push_str(&format!("block {addr}:\n"));
            out.push_str(&dump);
        }
    }
    out
}

/// Replays the schedule given by `prefix` (implicit zeros afterwards).
/// Fully deterministic: two replays of the same config and prefix produce
/// identical outcomes.
pub fn replay(cfg: &CheckConfig, prefix: &[usize], max_steps: usize) -> RunOutcome {
    let mut i = 0usize;
    run_one(
        cfg,
        |_arity| {
            let c = prefix.get(i).copied().unwrap_or(0);
            i += 1;
            c
        },
        max_steps,
    )
}

/// Bounded-exhaustive DFS over all schedules of `cfg`, by replay with
/// lexicographic prefix increments. Sound for workloads whose event tree
/// is finite (the queuing protocol's always is; the nack baseline can
/// retry unboundedly — its runs are cut off by `max_steps` and reported
/// as progress violations).
pub fn exhaustive(cfg: &CheckConfig, limits: &ExploreLimits) -> Exploration {
    let start = Instant::now();
    let mut prefix: Vec<usize> = Vec::new();
    let mut schedules = 0u64;
    loop {
        let out = replay(cfg, &prefix, limits.max_steps);
        schedules += 1;
        if let Some(v) = out.violation {
            let picked = out.choices.iter().map(|c| c.picked).collect();
            return falsify(cfg, picked, v, out.trace, schedules, limits);
        }
        // Lexicographic increment: bump the deepest incrementable choice,
        // truncating everything after it (those positions restart at 0).
        let mut i = out.choices.len();
        let next = loop {
            if i == 0 {
                return Exploration::AllGreen { schedules };
            }
            i -= 1;
            if out.choices[i].picked + 1 < out.choices[i].arity {
                let mut p: Vec<usize> = out.choices[..i].iter().map(|c| c.picked).collect();
                p.push(out.choices[i].picked + 1);
                break p;
            }
        };
        prefix = next;
        if schedules >= limits.max_schedules || start.elapsed().as_secs() >= limits.max_seconds {
            return Exploration::Budget { schedules };
        }
    }
}

/// Seeded random walks: `walks` independent schedules, each driven by its
/// own deterministic stream derived from `seed`. Any failure is shrunk
/// and reported with enough information to replay it exactly.
pub fn random_walks(
    cfg: &CheckConfig,
    seed: u64,
    walks: u64,
    limits: &ExploreLimits,
) -> Exploration {
    let start = Instant::now();
    for w in 0..walks {
        if start.elapsed().as_secs() >= limits.max_seconds {
            return Exploration::Budget { schedules: w };
        }
        let mut rng = SplitMix64::new(seed.wrapping_add(w).wrapping_mul(0x9E37_79B9_7F4A_7C15));
        let out = run_one(
            cfg,
            |arity| rng.next_below(arity as u64) as usize,
            limits.max_steps,
        );
        if let Some(v) = out.violation {
            let picked = out.choices.iter().map(|c| c.picked).collect();
            return falsify(cfg, picked, v, out.trace, w + 1, limits);
        }
    }
    Exploration::AllGreen { schedules: walks }
}

pub(crate) fn falsify(
    cfg: &CheckConfig,
    picked: Vec<usize>,
    violation: Violation,
    trace: String,
    schedules: u64,
    limits: &ExploreLimits,
) -> Exploration {
    let (schedule, out) = shrink(cfg, picked, limits.max_steps);
    // Shrinking preserves *some* violation but may change which oracle
    // fires first; prefer the shrunk run's report since that is what the
    // replay command will show.
    let (violation, trace) = match out.violation {
        Some(v) => (v, out.trace),
        None => (violation, trace),
    };
    Exploration::Falsified(Box::new(Counterexample {
        config: *cfg,
        schedule,
        violation,
        trace,
        schedules_explored: schedules,
    }))
}

/// Delta-debugging-style shrink of a failing schedule: truncate trailing
/// zeros (implied by replay), then greedily zero out each nonzero choice
/// while the replay still fails. Returns the minimized schedule and its
/// replay outcome (guaranteed failing).
pub fn shrink(
    cfg: &CheckConfig,
    mut schedule: Vec<usize>,
    max_steps: usize,
) -> (Vec<usize>, RunOutcome) {
    let strip = |s: &mut Vec<usize>| {
        while s.last() == Some(&0) {
            s.pop();
        }
    };
    strip(&mut schedule);
    let mut best = replay(cfg, &schedule, max_steps);
    debug_assert!(!best.ok(), "shrink called on a passing schedule");
    let mut progress = true;
    while progress {
        progress = false;
        let mut i = schedule.len();
        while i > 0 {
            i -= 1;
            if schedule[i] == 0 {
                continue;
            }
            let mut candidate = schedule.clone();
            candidate[i] = 0;
            strip(&mut candidate);
            let out = replay(cfg, &candidate, max_steps);
            if !out.ok() {
                schedule = candidate;
                best = out;
                progress = true;
                // Accepting a stripped candidate can shorten the schedule
                // past positions this pass has not visited yet; re-clamp
                // so the scan never indexes out of bounds.
                i = i.min(schedule.len());
            }
        }
    }
    (schedule, best)
}
