//! Small closed workloads for schedule exploration.
//!
//! A checker scenario is deliberately tiny — a handful of nodes hammering
//! one or two blocks — because interleaving count grows exponentially
//! with concurrency. Every node issues all its accesses at time zero, so
//! the controlled scheduler (not timing) decides every race.

use cenju4_directory::{DirectoryId, NodeId, SystemSize};
use cenju4_network::FaultPlan;
use cenju4_obs::SpanCollector;
use cenju4_protocol::{
    Addr, Engine, FaultInjection, MemOp, ProtocolId, ProtocolKind, RecoveryParams,
};
use cenju4_sim::SystemConfig;
use core::fmt;

/// One checker scenario: machine shape, workload size, protocol variant,
/// the (normally absent) injected fault, and the recovery-layer switch.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct CheckConfig {
    /// Machine size (2..=1024; exploration is only tractable to ~4).
    pub nodes: u16,
    /// Number of distinct blocks the workload touches.
    pub blocks: u16,
    /// Accesses each node issues.
    pub ops_per_node: u32,
    /// Coherence protocol under check (invalidate-based MESI or the
    /// update-based Dragon variant).
    pub coherence: ProtocolId,
    /// Directory sharer-set format under check.
    pub directory: DirectoryId,
    /// Protocol variant under check.
    pub kind: ProtocolKind,
    /// Test-only protocol mutation (mutant runs).
    pub fault: FaultInjection,
    /// Whether the link-level recovery layer is armed. With a lossless
    /// fabric this is a no-op (the engine elides the whole layer).
    pub recovery: bool,
    /// Seed for the probabilistic fault plan (meaningful with
    /// `drop_permille > 0`).
    pub fault_seed: u64,
    /// Per-message drop probability in permille for the probabilistic
    /// fabric plan; 0 leaves the fabric lossless (bar `fault` one-shots).
    pub drop_permille: u16,
}

impl Default for CheckConfig {
    fn default() -> Self {
        CheckConfig {
            nodes: 2,
            blocks: 1,
            ops_per_node: 2,
            coherence: ProtocolId::Mesi,
            directory: DirectoryId::PointerPattern,
            kind: ProtocolKind::Queuing,
            fault: FaultInjection::None,
            recovery: false,
            fault_seed: 0,
            drop_permille: 0,
        }
    }
}

impl fmt::Display for CheckConfig {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} nodes x {} blocks x {} ops ({}/{:?}, fault={}, recovery={})",
            self.nodes,
            self.blocks,
            self.ops_per_node,
            self.coherence,
            self.kind,
            self.fault,
            if self.recovery { "on" } else { "off" },
        )?;
        if self.directory != DirectoryId::default() {
            write!(f, " dir={}", self.directory)?;
        }
        if self.drop_permille > 0 {
            write!(f, " drop={}%o seed={}", self.drop_permille, self.fault_seed)?;
        }
        Ok(())
    }
}

impl CheckConfig {
    /// Rejects configurations whose fault mutant can never fire, so a
    /// checker run cannot report a hollow "all green". The delayed-
    /// invalidation race needs a requester, a home, and a *third* node
    /// holding the stale copy; the node mutants kill node 1 and need a
    /// healthy remote pair left over; `quarantine-off` mutates the
    /// recovery layer and is meaningless with recovery disarmed.
    pub fn validate(&self) -> Result<(), String> {
        let need = self.fault.min_nodes();
        if u32::from(self.nodes) < need {
            return Err(format!(
                "fault {} cannot fire with {} node(s); it needs at least \
                 {need} (valid: --nodes {need} or more)",
                self.fault, self.nodes
            ));
        }
        if self.fault.needs_recovery() && !self.recovery {
            return Err(format!(
                "fault {} mutates the recovery layer and never fires with \
                 recovery off; add --recovery on",
                self.fault
            ));
        }
        Ok(())
    }

    /// The blocks the workload touches, spread across home nodes.
    pub fn block_addrs(&self) -> Vec<Addr> {
        (0..self.blocks)
            .map(|b| Addr::new(NodeId::new(b % self.nodes), (b / self.nodes) as u32))
            .collect()
    }

    /// Total accesses the workload issues.
    pub fn issued_ops(&self) -> usize {
        self.nodes as usize * self.ops_per_node as usize
    }

    /// Builds a controlled-schedule engine with the workload issued: node
    /// `n`'s `i`-th access targets block `(i + n) mod blocks` and is a
    /// store when `n + i` is even — every pair of nodes races on every
    /// block, with reads checking the writes.
    pub fn engine(&self) -> Engine {
        let recovery = if self.recovery {
            if self.fault == FaultInjection::QuarantineOff {
                // The quarantine-off mutant arms the detector but lets a
                // suspected node fall back to Up instead of quarantining
                // it — the stranded masters must then blow a budget.
                RecoveryParams {
                    quarantine: false,
                    ..RecoveryParams::default()
                }
            } else {
                RecoveryParams::default()
            }
        } else {
            RecoveryParams::disabled()
        };
        let cfg = SystemConfig::builder(self.nodes)
            .protocol((self.coherence, self.kind))
            .directory(self.directory)
            .recovery(recovery)
            .build()
            .expect("checker scenario configuration invalid");
        let mut eng = cfg.build();
        eng.enable_controlled_schedule();
        eng.enable_trace(4096);
        // Span tracking rides along on every explored schedule: observers
        // are pure instrumentation (the schedule space is unchanged), and
        // the quiescence oracle uses the collector as a transaction-leak
        // detector — every opened span must have closed.
        eng.add_observer(Box::new(SpanCollector::new(
            SystemSize::new(self.nodes).expect("checker scenario node count invalid"),
        )));
        if self.drop_permille > 0 {
            eng.set_fault_plan(FaultPlan::random(self.fault_seed, self.drop_permille));
        }
        // A fabric mutant's one-shot plan replaces the probabilistic one.
        eng.inject_fault(self.fault);
        let blocks = self.block_addrs();
        for n in 0..self.nodes {
            for i in 0..self.ops_per_node {
                let addr = blocks[(i as usize + n as usize) % blocks.len()];
                let op = if (n as u32 + i).is_multiple_of(2) {
                    MemOp::Store
                } else {
                    MemOp::Load
                };
                eng.try_issue(cenju4_des::SimTime::ZERO, NodeId::new(n), op, addr)
                    .expect("workload issue rejected");
            }
        }
        eng
    }
}
