//! `cenju4-check`: command-line schedule exploration for the Cenju-4
//! coherence protocol.
//!
//! Subcommands:
//!
//! * `exhaustive` — bounded-exhaustive DFS over every schedule of a small
//!   scenario; exits 1 if any oracle is falsified.
//! * `reduced` — the same guarantee with dynamic partial-order reduction,
//!   state deduplication, and deterministic parallel workers; scales the
//!   exhaustive tier from 2 nodes to 4–5.
//! * `random` — seeded random walks (fanned across threads when
//!   `--threads` is not 1); exits 1 on a falsified oracle.
//! * `replay` — replays one printed schedule deterministically.
//! * `mutants` — arms each `FaultInjection` mutant and demands a
//!   counterexample from each; exits 1 if a mutant *survives* (the
//!   oracles failed to distinguish a broken protocol).
//!
//! Common flags: `--nodes N --blocks B --ops K`
//! `--protocol mesi|dragon|queuing|nack` (coherence protocol, or the
//! legacy home-variant names), `--directory <format>` (sharer-set
//! format; run with an unknown value to list them), `--fault <name>`
//! (run `cenju4-check` with an unknown fault to list them),
//! `--recovery on|off --fault-seed S --drop-rate P` (permille)
//! `--max-steps S --max-schedules M --max-seconds T`
//! `--threads N` (0 = all cores, honoring `CENJU4_CHECK_THREADS`);
//! `reduced` adds `--dpor on|off`, `random` adds `--seed`/`--walks`,
//! `replay` adds `--schedule 1,0,2` (`-` for the empty schedule),
//! `mutants` adds `--explorer full|reduced`.
//!
//! A config whose fault mutant cannot fire (e.g. `--fault node-down
//! --nodes 2`) is a usage error, not a hollow green run.

use cenju4_check::{
    default_check_threads, exhaustive, explore_reduced_with, random_walks, random_walks_parallel,
    replay, CheckConfig, Exploration, ExploreLimits,
};
use cenju4_directory::DirectoryId;
use cenju4_protocol::{FaultInjection, ProtocolId, ProtocolKind};
use std::process::ExitCode;

struct Args {
    cfg: CheckConfig,
    limits: ExploreLimits,
    seed: u64,
    walks: u64,
    schedule: Vec<usize>,
    /// Worker threads; 0 resolves to `default_check_threads()`.
    threads: usize,
    /// Whether `reduced` arms partial-order reduction + dedup.
    dpor: bool,
    /// Which explorer the `mutants` subcommand drives.
    reduced_mutants: bool,
}

/// Every known fault name, straight from [`FaultInjection::ALL`] — the
/// one source of truth for `--fault` parsing, `--help` text, and the
/// `mutants` subcommand.
fn fault_names() -> String {
    FaultInjection::ALL
        .iter()
        .map(|f| f.name())
        .collect::<Vec<_>>()
        .join("|")
}

/// Every known `--protocol` value: the coherence protocols from
/// [`ProtocolId::ALL`] plus the legacy home-variant names (which keep
/// existing invocations working unchanged).
fn protocol_names() -> String {
    let mut names: Vec<&str> = ProtocolId::ALL.iter().map(|p| p.name()).collect();
    names.extend(["queuing", "nack"]);
    names.join("|")
}

/// Every known directory format name, straight from [`DirectoryId::ALL`].
fn directory_names() -> String {
    DirectoryId::ALL
        .iter()
        .map(|d| d.name())
        .collect::<Vec<_>>()
        .join("|")
}

fn usage(err: &str) -> ExitCode {
    eprintln!("error: {err}");
    eprintln!(
        "usage: cenju4-check <exhaustive|reduced|random|replay|mutants> \
         [--nodes N] [--blocks B] [--ops K] [--protocol {}] \
         [--directory {}] \
         [--fault {}] [--recovery on|off] [--fault-seed S] \
         [--drop-rate PERMILLE] [--max-steps S] \
         [--max-schedules M] [--max-seconds T] [--seed S] [--walks W] \
         [--schedule 1,0,2|-] [--threads N] [--dpor on|off] \
         [--explorer full|reduced]",
        protocol_names(),
        directory_names(),
        fault_names()
    );
    ExitCode::from(2)
}

fn parse(mut argv: std::env::Args) -> Result<(String, Args), String> {
    let _bin = argv.next();
    let cmd = argv.next().ok_or("missing subcommand")?;
    let mut args = Args {
        cfg: CheckConfig::default(),
        limits: ExploreLimits {
            max_steps: 10_000,
            max_schedules: 1_000_000,
            max_seconds: 300,
        },
        seed: 1,
        walks: 100,
        schedule: Vec::new(),
        threads: 0,
        dpor: true,
        reduced_mutants: false,
    };
    while let Some(flag) = argv.next() {
        let mut val = || argv.next().ok_or(format!("{flag} needs a value"));
        match flag.as_str() {
            "--nodes" => args.cfg.nodes = val()?.parse().map_err(|e| format!("--nodes: {e}"))?,
            "--blocks" => args.cfg.blocks = val()?.parse().map_err(|e| format!("--blocks: {e}"))?,
            "--ops" => args.cfg.ops_per_node = val()?.parse().map_err(|e| format!("--ops: {e}"))?,
            "--protocol" => match val()?.as_str() {
                // Legacy home-variant names select the home machinery;
                // coherence-protocol names select the line-state machine.
                // Both route through the same `ProtocolSpec` builder seam.
                "queuing" => args.cfg.kind = ProtocolKind::Queuing,
                "nack" => args.cfg.kind = ProtocolKind::Nack,
                other => match ProtocolId::parse(other) {
                    Some(id) => args.cfg.coherence = id,
                    None => {
                        return Err(format!(
                            "unknown protocol {other:?}; known protocols: {}",
                            protocol_names()
                        ))
                    }
                },
            },
            "--directory" => {
                let v = val()?;
                args.cfg.directory = DirectoryId::parse(&v).ok_or(format!(
                    "unknown directory format {v:?}; known formats: {}",
                    directory_names()
                ))?
            }
            "--fault" => {
                let v = val()?;
                args.cfg.fault = FaultInjection::parse(&v).ok_or(format!(
                    "unknown fault {v:?}; known faults: {}",
                    fault_names()
                ))?
            }
            "--recovery" => {
                args.cfg.recovery = match val()?.as_str() {
                    "on" => true,
                    "off" => false,
                    other => return Err(format!("--recovery wants on|off, got {other:?}")),
                }
            }
            "--fault-seed" => {
                args.cfg.fault_seed = val()?.parse().map_err(|e| format!("--fault-seed: {e}"))?
            }
            "--drop-rate" => {
                let p: u16 = val()?.parse().map_err(|e| format!("--drop-rate: {e}"))?;
                if p > 1000 {
                    return Err(format!("--drop-rate is permille (0..=1000), got {p}"));
                }
                args.cfg.drop_permille = p
            }
            "--max-steps" => {
                args.limits.max_steps = val()?.parse().map_err(|e| format!("--max-steps: {e}"))?
            }
            "--max-schedules" => {
                args.limits.max_schedules = val()?
                    .parse()
                    .map_err(|e| format!("--max-schedules: {e}"))?
            }
            "--max-seconds" => {
                args.limits.max_seconds =
                    val()?.parse().map_err(|e| format!("--max-seconds: {e}"))?
            }
            "--threads" => args.threads = val()?.parse().map_err(|e| format!("--threads: {e}"))?,
            "--dpor" => {
                args.dpor = match val()?.as_str() {
                    "on" => true,
                    "off" => false,
                    other => return Err(format!("--dpor wants on|off, got {other:?}")),
                }
            }
            "--explorer" => {
                args.reduced_mutants = match val()?.as_str() {
                    "reduced" => true,
                    "full" => false,
                    other => return Err(format!("--explorer wants full|reduced, got {other:?}")),
                }
            }
            "--seed" => args.seed = val()?.parse().map_err(|e| format!("--seed: {e}"))?,
            "--walks" => args.walks = val()?.parse().map_err(|e| format!("--walks: {e}"))?,
            "--schedule" => {
                let v = val()?;
                if v != "-" {
                    args.schedule = v
                        .split(',')
                        .map(|c| c.parse().map_err(|e| format!("--schedule: {e}")))
                        .collect::<Result<_, _>>()?;
                }
            }
            other => return Err(format!("unknown flag {other:?}")),
        }
    }
    Ok((cmd, args))
}

fn report(what: &str, cfg: &CheckConfig, result: &Exploration) -> ExitCode {
    match result {
        Exploration::AllGreen { schedules } => {
            println!("{what}: {cfg}: all oracles green over {schedules} schedules");
            ExitCode::SUCCESS
        }
        Exploration::Budget { schedules } => {
            println!(
                "{what}: {cfg}: budget reached after {schedules} schedules, \
                 all green so far (inconclusive)"
            );
            ExitCode::SUCCESS
        }
        Exploration::Falsified(cx) => {
            println!("{what}: {cfg}: FALSIFIED");
            print!("{cx}");
            ExitCode::FAILURE
        }
    }
}

fn main() -> ExitCode {
    let (cmd, args) = match parse(std::env::args()) {
        Ok(p) => p,
        Err(e) => return usage(&e),
    };
    // A fault that cannot fire under this config would make every
    // explorer report a hollow green; refuse up front. `mutants` builds
    // its own per-fault configs and bumps node counts itself.
    if cmd != "mutants" {
        if let Err(e) = args.cfg.validate() {
            return usage(&e);
        }
    }
    let threads = if args.threads == 0 {
        default_check_threads()
    } else {
        args.threads
    };
    match cmd.as_str() {
        "exhaustive" => {
            let r = exhaustive(&args.cfg, &args.limits);
            report("exhaustive", &args.cfg, &r)
        }
        "reduced" => {
            let out = explore_reduced_with(&args.cfg, &args.limits, threads, args.dpor);
            println!(
                "reduced: {}: {} unique states, {} transitions, {} sleep-set \
                 skips, {} dedup hits over {} jobs x {} threads (reduction {})",
                args.cfg,
                out.unique_states,
                out.transitions,
                out.sleep_skipped,
                out.dedup_hits,
                out.jobs,
                threads,
                if out.reduced { "on" } else { "off" }
            );
            report("reduced", &args.cfg, &out.exploration)
        }
        "random" => {
            let r = if threads > 1 {
                random_walks_parallel(&args.cfg, args.seed, args.walks, &args.limits, threads)
            } else {
                random_walks(&args.cfg, args.seed, args.walks, &args.limits)
            };
            report(&format!("random (seed {})", args.seed), &args.cfg, &r)
        }
        "replay" => {
            let out = replay(&args.cfg, &args.schedule, args.limits.max_steps);
            match &out.violation {
                None => {
                    println!(
                        "replay: {}: schedule {:?} quiesced green in {} steps",
                        args.cfg, args.schedule, out.steps
                    );
                    ExitCode::SUCCESS
                }
                Some(v) => {
                    println!("replay: {}: violation at step {}", args.cfg, out.steps);
                    println!("  {v}");
                    if !out.trace.is_empty() {
                        for line in out.trace.lines() {
                            println!("    {line}");
                        }
                    }
                    ExitCode::FAILURE
                }
            }
        }
        "mutants" => {
            // Each mutant must be *killed*: the oracles must produce a
            // counterexample. A surviving mutant means the checker is
            // blind to that class of protocol bug. Recovery is forced off
            // — an armed recovery layer *tolerates* the fabric mutants,
            // which is precisely what the recovery tests verify.
            let mut all_killed = true;
            for fault in FaultInjection::ALL {
                if fault == FaultInjection::None {
                    continue;
                }
                // Some mutants cannot fire below a node count (delay-inval
                // needs a sharer remote from the home; the node mutants
                // kill node 1 and need a healthy remote pair left); bump
                // to the mutant's floor rather than run a hollow config.
                let nodes = args.cfg.nodes.max(fault.min_nodes() as u16);
                // quarantine-off is a mutant *of the recovery layer*: it
                // runs with recovery armed (the scenario builder clears
                // its quarantine switch) and must blow a retry budget.
                let recovery = fault.needs_recovery();
                let cfg = CheckConfig {
                    fault,
                    recovery,
                    nodes,
                    ..args.cfg
                };
                debug_assert!(cfg.validate().is_ok());
                // Exhaustive search is only tractable on the 2-node
                // scenario; larger ones use seeded (deterministic) walks.
                // `--explorer reduced` drives the same split through the
                // reduced/parallel engines instead.
                let result = match (nodes <= 2, args.reduced_mutants) {
                    (true, false) => exhaustive(&cfg, &args.limits),
                    (true, true) => {
                        explore_reduced_with(&cfg, &args.limits, threads, true).exploration
                    }
                    (false, false) => {
                        random_walks(&cfg, args.seed, args.walks.max(200), &args.limits)
                    }
                    (false, true) => random_walks_parallel(
                        &cfg,
                        args.seed,
                        args.walks.max(200),
                        &args.limits,
                        threads,
                    ),
                };
                match result {
                    Exploration::Falsified(cx) => {
                        println!("mutant {fault}: killed");
                        print!("{cx}");
                    }
                    other => {
                        println!("mutant {fault}: SURVIVED ({other:?})");
                        all_killed = false;
                    }
                }
            }
            if all_killed {
                println!("mutants: all killed");
                ExitCode::SUCCESS
            } else {
                ExitCode::FAILURE
            }
        }
        other => usage(&format!("unknown subcommand {other:?}")),
    }
}
