//! Reduced exploration: dynamic partial-order reduction, state
//! deduplication, livelock detection, and deterministic parallel search.
//!
//! The plain [`exhaustive`](crate::explore::exhaustive) enumeration
//! replays every interleaving of every ready event — exponential in both
//! nodes and operations. This module prunes that tree three ways while
//! preserving every violation the full enumeration can find:
//!
//! * **Sleep sets over event footprints** (dynamic partial-order
//!   reduction). Two ready events *commute* when their
//!   [`Footprint`](cenju4_protocol::Footprint)s are disjoint — they fire
//!   at different nodes, touch different blocks (hence different
//!   directory entries and cache lines), belong to different in-network
//!   gathers, and both ride ordering channels — and their firing times
//!   are order-invariant under the scheduler's virtual-clock clamp.
//!   After a branch `t` is explored from a state, `t` is *slept* for the
//!   sibling branches: any path that would merely reorder `t` against an
//!   event it commutes with is skipped, because the reordering reaches a
//!   state the `t`-first path already covered.
//! * **State-fingerprint deduplication**. Each visited state is hashed
//!   by [`Engine::state_fingerprint`](cenju4_protocol::Engine::state_fingerprint)
//!   (caches, directories, memory, in-flight messages per channel —
//!   absolute times excluded). A revisit is pruned when some earlier
//!   visit slept a *subset* of what the current visit sleeps — i.e. the
//!   earlier visit explored at least every transition this one would.
//! * **Livelock (cycle) detection**. Deduplication alone would silently
//!   swallow starvation loops (a cycle never reaches quiescence, so the
//!   per-path step cap never fires). A revisit of a fingerprint that is
//!   still on the current DFS path is a schedule the machine can repeat
//!   forever; it is reported as a `progress` violation, and the replay
//!   command is synthesized by unrolling the cycle (matching events by
//!   content digest, since ready indices shift between laps) until the
//!   step cap makes the violation reproducible by plain replay.
//!
//! Reduction and deduplication arm only for configurations whose
//! transition system the fingerprint fully captures: the queuing
//! protocol with recovery off and a lossless fabric
//! ([`dpor_eligible`]). Everything else (nack retries, recovery timers,
//! fabric fault plans with global one-shot counters) still runs through
//! the same DFS and the same parallel harness, just unreduced.
//!
//! **Parallelism is deterministic.** A sequential breadth-first pass
//! expands the root into a fixed number of independent subtree jobs
//! (thread-count independent); workers then pull jobs the way `sweep`
//! pulls points. Every job runs to completion even after another job has
//! found a violation, so the explored-state counts and the reported
//! (lowest-job-index, DFS-first) counterexample are identical for any
//! thread count.
//!
//! **Reduction runs sequentially; parallelism covers the unreduced
//! space.** The two do not compose profitably: a subtree partition is
//! *exact* for the unreduced schedule tree (each leaf lives under
//! exactly one frontier prefix, so jobs share no work), but the reduced
//! search walks the *state graph*, which converges so heavily that
//! per-job dedup tables re-explore the shared downstream DAG from every
//! prefix — measured at 3 nodes x 2 blocks x 2 ops, 48 jobs visit 281 k
//! states where one table visits 13 k, a 20x duplication that erases
//! the parallel speedup. A shared table would undo that but makes
//! pruning depend on cross-thread timing, and with it the explored-state
//! counts. Since reduction itself shrinks the search by orders of
//! magnitude (9298 schedules to 4 at the pinned config), the reduced
//! walk stays single-threaded and deterministic, and threads go where
//! they pay: unreduced exploration and seeded random campaigns.

use crate::explore::{falsify, render_trace, replay, Counterexample, Exploration, ExploreLimits};
use crate::oracles::{OracleState, Violation};
use crate::scenario::CheckConfig;
use cenju4_des::{FxHashMap, FxHashSet, SimTime};
use cenju4_protocol::{Engine, PendingEvent, ProtocolKind};
use std::collections::BTreeSet;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::Mutex;
use std::time::Instant;

/// Number of subtree jobs the frontier pass aims for. A constant (not a
/// function of the thread count) so explored-state counts are identical
/// for every `--threads` value; comfortably above any sane core count so
/// work still spreads.
const FRONTIER_JOBS: usize = 48;

/// Schedules longer than this skip greedy shrinking (each greedy pass is
/// quadratic in schedule length); trailing zeros are still stripped.
/// Only unrolled livelock lassos get anywhere near it.
const SHRINK_CAP: usize = 2_000;

/// Whether partial-order reduction and state deduplication are sound for
/// this configuration: the queuing protocol, recovery off, lossless
/// fabric, and no fabric fault plan. Nack retries and recovery timers
/// fire in global deadline order (no two timer events ever commute, and
/// their deadlines are absolute times the fingerprint abstracts);
/// fabric fault plans keep global per-class one-shot counters, so the
/// *order* of sends from different nodes decides which message the fault
/// hits. Ineligible configurations are explored unreduced — same DFS,
/// same parallel harness, no pruning.
pub fn dpor_eligible(cfg: &CheckConfig) -> bool {
    cfg.kind == ProtocolKind::Queuing
        && !cfg.recovery
        && cfg.drop_permille == 0
        && cfg.fault.fabric_plan().is_none()
}

/// Worker threads for parallel exploration: `CENJU4_CHECK_THREADS` if
/// set, else the machine's available parallelism.
pub fn default_check_threads() -> usize {
    std::env::var("CENJU4_CHECK_THREADS")
        .ok()
        .and_then(|v| v.parse().ok())
        .filter(|&n| n > 0)
        .unwrap_or_else(|| {
            std::thread::available_parallelism()
                .map(|n| n.get())
                .unwrap_or(1)
        })
}

/// The outcome of a reduced exploration, with the reduction statistics
/// the pinned-count tests and the CLI report.
#[derive(Clone, Debug)]
pub struct ReducedOutcome {
    /// How the exploration ended. `AllGreen`/`Budget` schedules count
    /// *leaves*: maximal paths driven to quiescence.
    pub exploration: Exploration,
    /// Events fired across all explored paths (DFS edges, not replay
    /// overhead).
    pub transitions: u64,
    /// Maximal paths driven to quiescence.
    pub leaves: u64,
    /// Distinct state fingerprints first seen (0 when unreduced).
    pub unique_states: u64,
    /// Branches skipped because a commuting sibling order covered them.
    pub sleep_skipped: u64,
    /// Revisits pruned by the fingerprint table's subset rule.
    pub dedup_hits: u64,
    /// Whether sleep sets and deduplication were armed (see
    /// [`dpor_eligible`]).
    pub reduced: bool,
    /// Subtree jobs the frontier pass produced.
    pub jobs: usize,
}

/// Reduced bounded-exhaustive exploration with [`dpor_eligible`]
/// deciding whether reduction arms; see [`explore_reduced_with`].
pub fn explore_reduced(
    cfg: &CheckConfig,
    limits: &ExploreLimits,
    threads: usize,
) -> ReducedOutcome {
    explore_reduced_with(cfg, limits, threads, dpor_eligible(cfg))
}

/// Reduced bounded-exhaustive exploration with the reduction switch
/// exposed — the DPOR soundness harness runs both settings and compares.
/// `reduce` is ignored (forced off) for ineligible configurations.
/// Deterministic for a given config regardless of `threads`.
pub fn explore_reduced_with(
    cfg: &CheckConfig,
    limits: &ExploreLimits,
    threads: usize,
    reduce: bool,
) -> ReducedOutcome {
    let reduce = reduce && dpor_eligible(cfg);
    let params = DfsParams {
        cfg,
        limits,
        reduce,
        collect_all: false,
        deadline: Instant::now() + std::time::Duration::from_secs(limits.max_seconds),
        frontier_oracles: Mutex::new(BTreeSet::new()),
    };
    let mut agg = DfsStats::default();
    let mut first_violation: Option<(Vec<usize>, Violation, String)>;
    let job_count;
    if reduce {
        // Sequential: the reduced walk needs one global dedup table (see
        // the module docs for the measured cost of sharding it).
        let out = dfs(&params, &[]);
        agg.absorb(&out.stats);
        first_violation = out.violation;
        job_count = 1;
    } else {
        let (frontier_stats, frontier_violation, jobs) = expand_frontier(&params);
        agg.absorb(&frontier_stats);
        first_violation = frontier_violation;
        job_count = jobs.len();
        if first_violation.is_none() {
            let results = fan_jobs(&params, &jobs, threads);
            for r in &results {
                agg.absorb(&r.stats);
            }
            // Every job ran to completion (violating jobs stop their own
            // subtree only), so picking the lowest job index is the same
            // answer for every thread count.
            first_violation = results.into_iter().find_map(|r| r.violation);
        }
    }
    let exploration = match first_violation {
        Some((picks, v, trace)) => falsify_capped(cfg, picks, v, trace, agg.leaves.max(1), limits),
        None if agg.budget_hit => Exploration::Budget {
            schedules: agg.leaves,
        },
        None => Exploration::AllGreen {
            schedules: agg.leaves,
        },
    };
    ReducedOutcome {
        exploration,
        transitions: agg.transitions,
        leaves: agg.leaves,
        unique_states: agg.unique_states,
        sleep_skipped: agg.sleep_skipped,
        dedup_hits: agg.dedup_hits,
        reduced: reduce,
        jobs: job_count,
    }
}

/// Collect-all exploration: instead of stopping at the first violation,
/// records the set of oracle names falsified anywhere in the schedule
/// space (each violating path is cut at its violation and the search
/// continues). The DPOR soundness harness asserts this set is identical
/// with reduction on and off. Only call on configurations whose
/// unreduced space is tractable.
pub fn violation_profile(
    cfg: &CheckConfig,
    limits: &ExploreLimits,
    threads: usize,
    reduce: bool,
) -> BTreeSet<&'static str> {
    let reduce = reduce && dpor_eligible(cfg);
    let params = DfsParams {
        cfg,
        limits,
        reduce,
        collect_all: true,
        deadline: Instant::now() + std::time::Duration::from_secs(limits.max_seconds),
        frontier_oracles: Mutex::new(BTreeSet::new()),
    };
    let mut oracles: BTreeSet<&'static str> = BTreeSet::new();
    if reduce {
        oracles.extend(dfs(&params, &[]).oracles);
    } else {
        let (_stats, _violation, jobs) = expand_frontier(&params);
        for r in fan_jobs(&params, &jobs, threads) {
            oracles.extend(r.oracles);
        }
    }
    oracles.extend(params.frontier_oracles.into_inner().unwrap());
    oracles
}

// ---------------------------------------------------------------------
// The DFS core
// ---------------------------------------------------------------------

struct DfsParams<'a> {
    cfg: &'a CheckConfig,
    limits: &'a ExploreLimits,
    reduce: bool,
    collect_all: bool,
    deadline: Instant,
    /// Oracle names falsified during the frontier pass (collect-all).
    frontier_oracles: Mutex<BTreeSet<&'static str>>,
}

impl<'a> DfsParams<'a> {
    fn cfg(&self) -> &CheckConfig {
        self.cfg
    }
}

#[derive(Clone, Copy, Debug, Default)]
struct DfsStats {
    transitions: u64,
    leaves: u64,
    unique_states: u64,
    sleep_skipped: u64,
    dedup_hits: u64,
    budget_hit: bool,
}

impl DfsStats {
    fn absorb(&mut self, other: &DfsStats) {
        self.transitions += other.transitions;
        self.leaves += other.leaves;
        self.unique_states += other.unique_states;
        self.sleep_skipped += other.sleep_skipped;
        self.dedup_hits += other.dedup_hits;
        self.budget_hit |= other.budget_hit;
    }
}

struct DfsOutcome {
    stats: DfsStats,
    /// First violation in this subtree's DFS order: full pick sequence
    /// from the true root, the violation, and the trace at that point.
    violation: Option<(Vec<usize>, Violation, String)>,
    /// Collect-all verdicts.
    oracles: BTreeSet<&'static str>,
}

/// One independent subtree of the (unreduced) exploration: the pick path
/// from the root to its base state. Subtrees partition the schedule tree
/// exactly — no leaf is reachable from two different frontier prefixes.
#[derive(Clone, Debug)]
struct Job {
    prefix: Vec<usize>,
}

/// A replayable engine position: the engine, its oracles, and the step
/// count, rebuilt from scratch on every backtrack (the engine is not
/// cloneable — observers are boxed trait objects).
struct Stepper {
    cfg: CheckConfig,
    blocks: Vec<cenju4_protocol::Addr>,
    issued: usize,
    eng: Engine,
    oracle: OracleState,
}

impl Stepper {
    fn new(cfg: &CheckConfig) -> Self {
        Stepper {
            cfg: *cfg,
            blocks: cfg.block_addrs(),
            issued: cfg.issued_ops(),
            eng: cfg.engine(),
            oracle: OracleState::new(cfg),
        }
    }

    fn reset(&mut self) {
        self.eng = self.cfg.engine();
        self.oracle = OracleState::new(&self.cfg);
    }

    /// The ready events, as (index into `pending_events`, event).
    fn ready(&self) -> Vec<(usize, PendingEvent)> {
        self.eng
            .pending_events()
            .into_iter()
            .enumerate()
            .filter(|(_, e)| e.ready)
            .collect()
    }

    fn quiescent(&self) -> bool {
        self.eng.pending_event_count() == 0
    }

    fn now(&self) -> SimTime {
        self.eng.now()
    }

    fn fingerprint(&self) -> u64 {
        self.eng.state_fingerprint(&self.blocks)
    }

    /// Fires the ready event at ready-position `pick`, running the
    /// step oracles. `Err` carries the violation (protocol panics are
    /// converted, like `run_one`); after an `Err` the engine may be
    /// poisoned — `reset` before reuse.
    fn fire(&mut self, pick: usize) -> Result<(), (Violation, String)> {
        let result = catch_unwind(AssertUnwindSafe(|| {
            let ready = self.ready();
            let idx = ready[pick.min(ready.len() - 1)].0;
            let notes = self.eng.run_pending(idx).expect("ready event vanished");
            if let Some(v) = self.oracle.note(&notes, &self.eng) {
                return Some(v);
            }
            self.oracle.check_step(&self.eng)
        }));
        match result {
            Ok(None) => Ok(()),
            Ok(Some(v)) => {
                let trace = render_trace(&self.eng, &self.cfg);
                Err((v, trace))
            }
            Err(panic) => {
                let msg = panic
                    .downcast_ref::<String>()
                    .map(String::as_str)
                    .or_else(|| panic.downcast_ref::<&str>().copied())
                    .unwrap_or("opaque panic payload");
                Err((
                    Violation {
                        oracle: "panic",
                        detail: format!("protocol panicked: {msg}"),
                    },
                    String::new(),
                ))
            }
        }
    }

    /// Fires the ready event with the given content digest (used when
    /// unrolling a livelock lasso: ready *indices* shift between laps
    /// but the repeating events keep their content). Returns the ready
    /// position fired.
    fn fire_by_content(&mut self, content: u64) -> Option<usize> {
        let pick = self
            .ready()
            .iter()
            .position(|(_, e)| e.content == content)?;
        self.fire(pick).ok()?;
        Some(pick)
    }

    fn check_quiescent(&mut self) -> Option<(Violation, String)> {
        self.oracle
            .check_quiescent(&self.eng, self.issued)
            .map(|v| {
                let trace = render_trace(&self.eng, &self.cfg);
                (v, trace)
            })
    }

    /// Replays a known-green pick prefix from the initial state.
    fn replay_green(&mut self, picks: &[usize]) {
        self.reset();
        for &p in picks {
            self.fire(p)
                .expect("a previously green prefix replayed with a violation");
        }
    }
}

/// Sleep-signature subset test over sorted digest slices.
fn subset(a: &[u64], b: &[u64]) -> bool {
    let mut bi = b.iter();
    'outer: for x in a {
        for y in bi.by_ref() {
            match y.cmp(x) {
                std::cmp::Ordering::Less => continue,
                std::cmp::Ordering::Equal => continue 'outer,
                std::cmp::Ordering::Greater => return false,
            }
        }
        return false;
    }
    true
}

struct Frame {
    ready: Vec<(usize, PendingEvent)>,
    /// Content digests slept at this state: transitions covered by a
    /// commuting sibling order (inherited) or already explored here.
    sleep: FxHashSet<u64>,
    /// Next ready position to consider.
    next: usize,
    /// Virtual clock at this state, for the commute time condition.
    now: SimTime,
}

/// Explores the subtree rooted at `prefix` depth-first. Backtracking
/// rebuilds the engine by replay; with `params.reduce`, maintains a
/// fingerprint table (subset rule), sleep sets, and on-path cycle
/// detection.
fn dfs(params: &DfsParams, prefix: &[usize]) -> DfsOutcome {
    let cfg = params.cfg();
    let mut out = DfsOutcome {
        stats: DfsStats::default(),
        violation: None,
        oracles: BTreeSet::new(),
    };
    let mut table: FxHashMap<u64, Vec<Box<[u64]>>> = FxHashMap::default();
    let mut st = Stepper::new(cfg);
    st.replay_green(prefix);
    let mut stack: Vec<Frame> = Vec::new();
    // Fingerprints of the states on `stack`, for livelock detection.
    let mut on_path: Vec<u64> = Vec::new();
    // Picks from the subtree root to the engine's current state.
    let mut path: Vec<usize> = Vec::new();
    // Whether the engine has drifted off the top-of-stack state (after
    // any backtrack) and must be rebuilt by replay before firing.
    let mut dirty = false;
    // Sleep set to attach to the state the engine currently sits on.
    let mut incoming_sleep: FxHashSet<u64> = FxHashSet::default();
    // Whether the current engine state still needs its entry processing
    // (leaf/prune checks and frame creation).
    let mut entering = true;

    macro_rules! record_violation {
        ($v:expr, $trace:expr) => {{
            let (v, trace): (Violation, String) = ($v, $trace);
            if params.collect_all {
                out.oracles.insert(v.oracle);
            } else {
                let mut picks = prefix.to_vec();
                picks.extend_from_slice(&path);
                out.violation = Some((picks, v, trace));
                return out;
            }
        }};
    }

    loop {
        if Instant::now() >= params.deadline || out.stats.leaves >= params.limits.max_schedules {
            out.stats.budget_hit = true;
            return out;
        }
        if entering {
            entering = false;
            if st.quiescent() {
                out.stats.leaves += 1;
                if let Some((v, trace)) = st.check_quiescent() {
                    record_violation!(v, trace);
                }
                path.pop();
                dirty = true;
                continue;
            }
            if prefix.len() + path.len() >= params.limits.max_steps {
                let v = Violation {
                    oracle: "progress",
                    detail: format!(
                        "no quiescence after {} steps — the schedule starves \
                         some transaction",
                        params.limits.max_steps
                    ),
                };
                record_violation!(v, String::new());
                path.pop();
                dirty = true;
                continue;
            }
            if params.reduce {
                let fp = st.fingerprint();
                if on_path.contains(&fp) {
                    // A lap of the state graph: the machine can repeat
                    // this cycle of deliveries forever.
                    let v = Violation {
                        oracle: "progress",
                        detail: format!(
                            "state repeats after {} steps — the schedule can \
                             cycle forever without quiescing",
                            prefix.len() + path.len()
                        ),
                    };
                    if params.collect_all {
                        out.oracles.insert(v.oracle);
                    } else {
                        out.violation = Some(unroll_lasso(
                            cfg,
                            params.limits,
                            prefix,
                            &path,
                            &on_path,
                            fp,
                            v,
                        ));
                        return out;
                    }
                    path.pop();
                    dirty = true;
                    continue;
                }
                let mut sig: Vec<u64> = incoming_sleep.iter().copied().collect();
                sig.sort_unstable();
                let sig: Box<[u64]> = sig.into();
                match table.get_mut(&fp) {
                    Some(sigs) if sigs.iter().any(|old| subset(old, &sig)) => {
                        out.stats.dedup_hits += 1;
                        path.pop();
                        dirty = true;
                        continue;
                    }
                    Some(sigs) => {
                        sigs.retain(|old| !subset(&sig, old));
                        sigs.push(sig);
                    }
                    None => {
                        table.insert(fp, vec![sig]);
                        out.stats.unique_states += 1;
                    }
                }
                on_path.push(fp);
            } else {
                on_path.push(0);
            }
            stack.push(Frame {
                ready: st.ready(),
                sleep: std::mem::take(&mut incoming_sleep),
                next: 0,
                now: st.now(),
            });
            continue;
        }
        let Some(frame) = stack.last_mut() else {
            return out;
        };
        let mut b = frame.next;
        while b < frame.ready.len() {
            if params.reduce && frame.sleep.contains(&frame.ready[b].1.content) {
                out.stats.sleep_skipped += 1;
                b += 1;
            } else {
                break;
            }
        }
        if b >= frame.ready.len() {
            stack.pop();
            on_path.pop();
            if path.pop().is_some() {
                dirty = true;
            }
            continue;
        }
        frame.next = b + 1;
        let chosen = frame.ready[b].1.clone();
        let child_sleep: FxHashSet<u64> = if params.reduce {
            frame
                .ready
                .iter()
                .filter(|(_, e)| {
                    frame.sleep.contains(&e.content) && e.commutes_with(&chosen, frame.now)
                })
                .map(|(_, e)| e.content)
                .collect()
        } else {
            FxHashSet::default()
        };
        if params.reduce {
            frame.sleep.insert(chosen.content);
        }
        if dirty {
            let mut picks = prefix.to_vec();
            picks.extend_from_slice(&path);
            st.replay_green(&picks);
            dirty = false;
        }
        path.push(b);
        out.stats.transitions += 1;
        match st.fire(b) {
            Ok(()) => {
                incoming_sleep = child_sleep;
                entering = true;
            }
            Err((v, trace)) => {
                record_violation!(v, trace);
                path.pop();
                dirty = true;
                // The engine may be poisoned after a panic; the dirty
                // replay rebuilds it from scratch.
                st.reset();
            }
        }
    }
}

/// Builds a replayable counterexample for a livelock: replays to the
/// cycle entry, then laps the cycle (matching repeating events by
/// content digest, since ready indices shift between laps) until the
/// step cap, so plain replay of the emitted schedule starves and the
/// `progress` oracle fires on its own.
fn unroll_lasso(
    cfg: &CheckConfig,
    limits: &ExploreLimits,
    prefix: &[usize],
    path: &[usize],
    on_path: &[u64],
    fp: u64,
    violation: Violation,
) -> (Vec<usize>, Violation, String) {
    let entry = on_path.iter().position(|&f| f == fp).unwrap_or(0);
    // Picks from the true root to the cycle entry state.
    let mut picks: Vec<usize> = prefix.to_vec();
    picks.extend_from_slice(&path[..entry]);
    // The repeating transitions, by content: re-walk the cycle once to
    // record what fired (the DFS only kept pick indices).
    let mut st = Stepper::new(cfg);
    st.replay_green(&picks);
    let mut cycle: Vec<u64> = Vec::new();
    for &p in &path[entry..] {
        let ready = st.ready();
        cycle.push(ready[p.min(ready.len() - 1)].1.content);
        if st.fire(p).is_err() {
            break;
        }
        picks.push(p);
    }
    // Lap until the step cap; each lap re-finds the events by content.
    'unroll: while picks.len() < limits.max_steps && !cycle.is_empty() {
        for &c in &cycle {
            match st.fire_by_content(c) {
                Some(p) => picks.push(p),
                // The lap diverged (should not happen: equal fingerprints
                // mean equal per-channel contents, hence equal ready
                // sets) — fall back to whatever schedule we built.
                None => break 'unroll,
            }
            if picks.len() >= limits.max_steps {
                break 'unroll;
            }
        }
    }
    // Prefer what the replayed schedule actually reports.
    let out = replay(cfg, &picks, limits.max_steps);
    match out.violation {
        Some(v) => (picks, v, out.trace),
        None => (picks, violation, String::new()),
    }
}

/// Shrinks and packages a violation; skips the quadratic greedy pass for
/// very long (lasso-unrolled) schedules.
fn falsify_capped(
    cfg: &CheckConfig,
    mut picks: Vec<usize>,
    violation: Violation,
    trace: String,
    schedules: u64,
    limits: &ExploreLimits,
) -> Exploration {
    // Guard against a schedule whose plain replay no longer fails (a
    // diverged lasso unroll): shrinking asserts on a passing start.
    if picks.len() > SHRINK_CAP || replay(cfg, &picks, limits.max_steps).ok() {
        while picks.last() == Some(&0) {
            picks.pop();
        }
        return Exploration::Falsified(Box::new(Counterexample {
            config: *cfg,
            schedule: picks,
            violation,
            trace,
            schedules_explored: schedules,
        }));
    }
    falsify(cfg, picks, violation, trace, schedules, limits)
}

// ---------------------------------------------------------------------
// Frontier expansion and the worker pool
// ---------------------------------------------------------------------

/// Sequentially expands the root breadth-first into independent subtree
/// jobs (aiming for [`FRONTIER_JOBS`]). Thread-count independent by
/// construction. Returns the frontier statistics (leaves and violations
/// found at shallow depth), the first violation if one was found during
/// expansion, and the job list. Only used unreduced — the reduced walk
/// is sequential (see the module docs).
#[allow(clippy::type_complexity)]
fn expand_frontier(
    params: &DfsParams,
) -> (DfsStats, Option<(Vec<usize>, Violation, String)>, Vec<Job>) {
    let cfg = params.cfg();
    let mut stats = DfsStats::default();
    let mut queue: std::collections::VecDeque<Job> = std::collections::VecDeque::new();
    queue.push_back(Job { prefix: Vec::new() });
    let mut st = Stepper::new(cfg);
    while queue.len() < FRONTIER_JOBS {
        let Some(job) = queue.pop_front() else {
            break;
        };
        if Instant::now() >= params.deadline {
            stats.budget_hit = true;
            queue.push_front(job);
            break;
        }
        st.replay_green(&job.prefix);
        if st.quiescent() {
            stats.leaves += 1;
            if let Some((v, trace)) = st.check_quiescent() {
                if params.collect_all {
                    params.frontier_oracles.lock().unwrap().insert(v.oracle);
                } else {
                    return (stats, Some((job.prefix, v, trace)), Vec::new());
                }
            }
            continue;
        }
        let arity = st.ready().len();
        for b in 0..arity {
            // Fire the branch to validate it (a violation one step below
            // the frontier must surface here, not silently become a job
            // whose prefix fails to replay green).
            st.replay_green(&job.prefix);
            stats.transitions += 1;
            let mut child_prefix = job.prefix.clone();
            child_prefix.push(b);
            match st.fire(b) {
                Ok(()) => queue.push_back(Job {
                    prefix: child_prefix,
                }),
                Err((v, trace)) => {
                    if params.collect_all {
                        params.frontier_oracles.lock().unwrap().insert(v.oracle);
                        st.reset();
                    } else {
                        return (stats, Some((child_prefix, v, trace)), Vec::new());
                    }
                }
            }
        }
    }
    (stats, None, queue.into_iter().collect())
}

/// Runs the jobs across a worker pool, `sweep`-style: scoped threads
/// pull the next job index from an atomic counter. Results land in
/// per-job slots, so aggregation order (and therefore every count and
/// the chosen counterexample) is independent of scheduling.
fn fan_jobs(params: &DfsParams, jobs: &[Job], threads: usize) -> Vec<DfsOutcome> {
    let threads = threads.max(1).min(jobs.len().max(1));
    if threads <= 1 || jobs.len() <= 1 {
        return jobs.iter().map(|j| dfs(params, &j.prefix)).collect();
    }
    let next = AtomicUsize::new(0);
    let slots: Vec<Mutex<Option<DfsOutcome>>> = jobs.iter().map(|_| Mutex::new(None)).collect();
    std::thread::scope(|scope| {
        for _ in 0..threads {
            scope.spawn(|| loop {
                let i = next.fetch_add(1, Ordering::Relaxed);
                let Some(job) = jobs.get(i) else {
                    break;
                };
                let out = dfs(params, &job.prefix);
                *slots[i].lock().unwrap() = Some(out);
            });
        }
    });
    slots
        .into_iter()
        .map(|s| s.into_inner().unwrap().expect("job slot unfilled"))
        .collect()
}

// ---------------------------------------------------------------------
// Parallel random walks
// ---------------------------------------------------------------------

/// Seeded random walks fanned across threads. Walk `w` uses the same
/// per-walk stream as [`random_walks`](crate::explore::random_walks), so
/// for any thread count the outcome is the sequential outcome: workers
/// race batches but only the *lowest* failing walk index is reported
/// (batches above the current best are skipped — they can never lower
/// the minimum), and the winning walk is re-run to rebuild its schedule.
/// Under a wall-clock timeout the result degrades to `Budget`.
pub fn random_walks_parallel(
    cfg: &CheckConfig,
    seed: u64,
    walks: u64,
    limits: &ExploreLimits,
    threads: usize,
) -> Exploration {
    let threads = threads.max(1);
    if threads == 1 {
        return crate::explore::random_walks(cfg, seed, walks, limits);
    }
    const BATCH: u64 = 32;
    let deadline = Instant::now() + std::time::Duration::from_secs(limits.max_seconds);
    let best = AtomicU64::new(u64::MAX);
    let next = AtomicU64::new(0);
    let green = AtomicU64::new(0);
    let timed_out = std::sync::atomic::AtomicBool::new(false);
    std::thread::scope(|scope| {
        for _ in 0..threads {
            scope.spawn(|| loop {
                let start = next.fetch_add(1, Ordering::Relaxed) * BATCH;
                if start >= walks {
                    break;
                }
                if start > best.load(Ordering::Relaxed) {
                    continue;
                }
                for w in start..(start + BATCH).min(walks) {
                    if w > best.load(Ordering::Relaxed) {
                        break;
                    }
                    if Instant::now() >= deadline {
                        timed_out.store(true, Ordering::Relaxed);
                        return;
                    }
                    let out = walk(cfg, seed, w, limits);
                    if out.violation.is_some() {
                        best.fetch_min(w, Ordering::Relaxed);
                    } else {
                        green.fetch_add(1, Ordering::Relaxed);
                    }
                }
            });
        }
    });
    let b = best.load(Ordering::Relaxed);
    if b != u64::MAX {
        let out = walk(cfg, seed, b, limits);
        let v = out
            .violation
            .clone()
            .expect("winning walk failed to reproduce");
        let picks = out.choices.iter().map(|c| c.picked).collect();
        falsify(cfg, picks, v, out.trace, b + 1, limits)
    } else if timed_out.load(Ordering::Relaxed) {
        Exploration::Budget {
            schedules: green.load(Ordering::Relaxed),
        }
    } else {
        Exploration::AllGreen { schedules: walks }
    }
}

/// One random walk, with the exact per-walk stream `random_walks` uses.
fn walk(
    cfg: &CheckConfig,
    seed: u64,
    w: u64,
    limits: &ExploreLimits,
) -> crate::explore::RunOutcome {
    let mut rng =
        cenju4_des::SplitMix64::new(seed.wrapping_add(w).wrapping_mul(0x9E37_79B9_7F4A_7C15));
    crate::explore::run_one(
        cfg,
        |arity| rng.next_below(arity as u64) as usize,
        limits.max_steps,
    )
}
