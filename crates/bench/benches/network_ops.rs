//! Microbenchmarks of the network fabric: unicast walks,
//! multicast replication, and gather processing at several fan-outs.

use cenju4::directory::nodemap::DestSpec;
use cenju4::prelude::*;
use cenju4_bench::micro::{black_box, BenchId, Harness};
use cenju4_bench::{bench_group, bench_main};

fn spec_of(k: u16) -> DestSpec {
    DestSpec::Pattern((0..k).map(NodeId::new).collect())
}

fn bench_unicast(c: &mut Harness) {
    let sys = SystemSize::new(1024).unwrap();
    c.bench_function("fabric_unicast_6stage", |b| {
        let mut f: Fabric<u32> = Fabric::new(sys, NetParams::default());
        let mut t = 0u64;
        b.iter(|| {
            t += 1_000;
            black_box(f.send_unicast(
                SimTime::from_ns(t),
                NodeId::new(5),
                NodeId::new(900),
                false,
                0,
                WireClass::Request,
            ))
        })
    });
}

fn bench_multicast(c: &mut Harness) {
    let sys = SystemSize::new(1024).unwrap();
    let mut g = c.benchmark_group("fabric_multicast");
    for k in [4u16, 32, 256, 1024] {
        g.bench_with_input(BenchId::from_parameter(k), &k, |b, &k| {
            let spec = spec_of(k);
            let mut f: Fabric<u32> = Fabric::new(sys, NetParams::default());
            let mut t = 0u64;
            b.iter(|| {
                t += 100_000;
                black_box(f.send_multicast(
                    SimTime::from_ns(t),
                    NodeId::new(0),
                    spec,
                    false,
                    0,
                    None,
                    WireClass::Invalidation,
                ))
            })
        });
    }
    g.finish();
}

fn bench_gather_round(c: &mut Harness) {
    let sys = SystemSize::new(1024).unwrap();
    let mut g = c.benchmark_group("fabric_gather_round");
    for k in [4u16, 64, 512] {
        g.bench_with_input(BenchId::from_parameter(k), &k, |b, &k| {
            let spec = spec_of(k);
            let mut f: Fabric<u32> = Fabric::new(sys, NetParams::default());
            let mut t = 0u64;
            b.iter(|| {
                t += 1_000_000;
                let id = f.open_gather(NodeId::new(0), spec);
                let dels = f.send_multicast(
                    SimTime::from_ns(t),
                    NodeId::new(0),
                    spec,
                    false,
                    0,
                    Some(id),
                    WireClass::Invalidation,
                );
                let mut out = None;
                for d in &dels {
                    if let Some(x) = f.send_gather_reply(d.at, d.node, id, 1) {
                        out = Some(x);
                    }
                }
                black_box(out)
            })
        });
    }
    g.finish();
}

bench_group!(benches, bench_unicast, bench_multicast, bench_gather_round);
bench_main!(benches);
