//! Microbenchmarks of the directory hot paths: node-map
//! insertion, membership, destination-spec matching, and 64-bit packing.

use cenju4::directory::nodemap::DestSpec;
use cenju4::prelude::*;
use cenju4_bench::micro::{black_box, Harness};
use cenju4_bench::{bench_group, bench_main};

fn bench_nodemap(c: &mut Harness) {
    let sys = SystemSize::new(1024).unwrap();
    let mut g = c.benchmark_group("nodemap");

    g.bench_function("add_4_pointers", |b| {
        b.iter(|| {
            let mut m = Cenju4NodeMap::new(sys);
            for n in [3u16, 700, 45, 901] {
                m.add(NodeId::new(black_box(n)));
            }
            black_box(m.count())
        })
    });

    g.bench_function("add_32_switch_to_pattern", |b| {
        b.iter(|| {
            let mut m = Cenju4NodeMap::new(sys);
            for n in 0..32u16 {
                m.add(NodeId::new(black_box(n * 31 % 1024)));
            }
            black_box(m.count())
        })
    });

    let mut shared = Cenju4NodeMap::new(sys);
    for n in 0..64u16 {
        shared.add(NodeId::new(n * 17 % 1024));
    }
    g.bench_function("contains_pattern", |b| {
        b.iter(|| black_box(shared.contains(NodeId::new(black_box(513)))))
    });

    g.bench_function("represented_pattern", |b| {
        b.iter(|| black_box(shared.represented().len()))
    });
    g.finish();
}

fn bench_entry_packing(c: &mut Harness) {
    let sys = SystemSize::new(1024).unwrap();
    let mut e = DirectoryEntry::new(sys);
    e.set_state(MemState::PendingExclusive);
    for n in 0..12u16 {
        e.map_mut().add(NodeId::new(n * 89 % 1024));
    }
    c.bench_function("entry_pack_unpack_64bit", |b| {
        b.iter(|| {
            let bits = black_box(&e).to_bits();
            black_box(DirectoryEntry::from_bits(black_box(bits), sys))
        })
    });
}

fn bench_dest_spec(c: &mut Harness) {
    let sys = SystemSize::new(1024).unwrap();
    let mut m = Cenju4NodeMap::new(sys);
    for n in 0..48u16 {
        m.add(NodeId::new(n * 53 % 1024));
    }
    let spec = m.to_dest_spec();
    // The switch-side predicate evaluated at every multicast branch point.
    c.bench_function("dest_spec_intersects_masked_existing", |b| {
        b.iter(|| {
            black_box(spec.intersects_masked_existing(black_box(0xFC0), black_box(0x340), sys))
        })
    });
    let single = DestSpec::single(NodeId::new(77));
    c.bench_function("dest_spec_singleton_match", |b| {
        b.iter(|| black_box(single.intersects_masked_existing(0x3FF, 77, sys)))
    });
}

bench_group!(benches, bench_nodemap, bench_entry_packing, bench_dest_spec);
bench_main!(benches);
