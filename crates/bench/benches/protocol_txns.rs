//! Benchmarks of end-to-end coherence transactions: how fast the
//! simulator executes the appendix's sequences (simulator throughput, not
//! simulated latency).

use cenju4::prelude::*;
use cenju4_bench::micro::{black_box, BenchId, Harness};
use cenju4_bench::{bench_group, bench_main};

fn engine(nodes: u16) -> Engine {
    Engine::new(
        SystemSize::new(nodes).unwrap(),
        ProtoParams::default(),
        NetParams::default(),
        ProtocolKind::Queuing,
    )
}

fn bench_sequences(c: &mut Harness) {
    let mut g = c.benchmark_group("txn");

    g.bench_function("remote_clean_load", |b| {
        let mut eng = engine(16);
        let mut block = 0u32;
        b.iter(|| {
            block += 1;
            eng.issue(
                eng.now(),
                NodeId::new(0),
                MemOp::Load,
                Addr::new(NodeId::new(1), block % 4096),
            );
            black_box(eng.run().len())
        })
    });

    g.bench_function("ownership_upgrade_8_sharers", |b| {
        let mut eng = engine(16);
        let mut block = 0u32;
        b.iter(|| {
            block += 1;
            let a = Addr::new(NodeId::new(0), block % 4096);
            for n in 1..=8u16 {
                eng.issue(eng.now(), NodeId::new(n), MemOp::Load, a);
                eng.run();
            }
            eng.issue(eng.now(), NodeId::new(1), MemOp::Store, a);
            black_box(eng.run().len())
        })
    });

    g.finish();
}

fn bench_contention_throughput(c: &mut Harness) {
    let mut g = c.benchmark_group("contention");
    g.sample_size(20);
    for nodes in [16u16, 64] {
        g.bench_with_input(BenchId::from_parameter(nodes), &nodes, |b, &n| {
            b.iter(|| {
                let mut eng = engine(n);
                let a = Addr::new(NodeId::new(0), 0);
                for i in 0..n {
                    eng.issue(eng.now(), NodeId::new(i), MemOp::Load, a);
                    eng.run();
                }
                let t0 = eng.now();
                for i in 0..n {
                    eng.issue(t0, NodeId::new(i), MemOp::Store, a);
                }
                black_box(eng.run().len())
            })
        });
    }
    g.finish();
}

bench_group!(benches, bench_sequences, bench_contention_throughput);
bench_main!(benches);
