//! Ablation benchmarks for the design choices DESIGN.md calls out. These
//! report *simulated latency* (ns of machine time per transaction) rather
//! than host throughput, using the harness only as the runner; each ablation
//! prints its simulated outcome once per run.

use cenju4::directory::precision::{whole_machine_pool, SchemeKind};
use cenju4::prelude::*;
use cenju4::sim::probes::store_latency;
use cenju4_bench::micro::{black_box, Harness};
use cenju4_bench::{bench_group, bench_main};

/// Dynamic pointer→bit-pattern vs always-coarse-vector: invalidation
/// fan-out cost at small sharer counts (the directory ablation).
fn ablation_directory_precision(c: &mut Harness) {
    let sys = SystemSize::new(1024).unwrap();
    let pool = whole_machine_pool(sys);
    c.bench_function("ablation/precision_sweep_k8", |b| {
        b.iter(|| {
            let bp = cenju4::directory::precision::average_represented(
                SchemeKind::Cenju4,
                sys,
                &pool,
                8,
                20,
                &mut cenju4::des::SplitMix64::new(1),
            );
            let cv = cenju4::directory::precision::average_represented(
                SchemeKind::CoarseVector32,
                sys,
                &pool,
                8,
                20,
                &mut cenju4::des::SplitMix64::new(1),
            );
            // The whole point of the bit pattern: ~8x fewer invalidations.
            assert!(bp < cv);
            black_box((bp, cv))
        })
    });
}

/// Multicast+gather vs singlecast emulation: the Figure 10 ablation.
fn ablation_multicast(c: &mut Harness) {
    let mut g = c.benchmark_group("ablation/multicast");
    g.sample_size(10);
    let base = SystemConfig::new(128).unwrap();
    g.bench_function("hardware_128_sharers", |b| {
        b.iter(|| black_box(store_latency(&base, 128)))
    });
    let no_mc = base.without_multicast();
    g.bench_function("singlecast_128_sharers", |b| {
        b.iter(|| black_box(store_latency(&no_mc, 128)))
    });
    g.finish();
}

/// Queuing vs nack protocol under contention: simulated completion time.
fn ablation_protocol(c: &mut Harness) {
    let mut g = c.benchmark_group("ablation/protocol");
    g.sample_size(10);
    let run = |cfg: &SystemConfig| {
        let mut eng = cfg.build();
        let a = Addr::new(NodeId::new(0), 0);
        for i in 0..16u16 {
            eng.issue(eng.now(), NodeId::new(i), MemOp::Load, a);
            eng.run();
        }
        let t0 = eng.now();
        for i in 0..16u16 {
            eng.issue(t0, NodeId::new(i), MemOp::Store, a);
        }
        eng.run();
        eng.now().since(t0).as_ns()
    };
    let queuing = SystemConfig::new(16).unwrap();
    let nack = queuing.with_nack_protocol();
    g.bench_function("queuing_contention_16", |b| {
        b.iter(|| black_box(run(&queuing)))
    });
    g.bench_function("nack_contention_16", |b| b.iter(|| black_box(run(&nack))));
    g.finish();
}

/// Writeback no-reply fast path: eviction-heavy traffic with a tiny cache.
fn ablation_writeback_pressure(c: &mut Harness) {
    let mut g = c.benchmark_group("ablation/writeback");
    g.sample_size(10);
    let params = ProtoParams {
        cache_bytes: 8 * 128,
        cache_assoc: 1,
        ..ProtoParams::default()
    };
    g.bench_function("eviction_storm_direct_mapped", |b| {
        b.iter(|| {
            let mut eng = Engine::new(
                SystemSize::new(16).unwrap(),
                params,
                NetParams::default(),
                ProtocolKind::Queuing,
            );
            for i in 0..200u32 {
                eng.issue(
                    eng.now(),
                    NodeId::new(0),
                    MemOp::Store,
                    Addr::new(NodeId::new(1), i),
                );
                eng.run();
            }
            black_box(eng.stats().writebacks.get())
        })
    });
    g.finish();
}

/// Singlecast threshold (the Section 4.1 "not implemented" optimization):
/// simulated store latency at small fan-outs, threshold 1 vs 8.
fn ablation_singlecast_threshold(c: &mut Harness) {
    let mut g = c.benchmark_group("ablation/singlecast_threshold");
    g.sample_size(10);
    for threshold in [1u32, 8] {
        g.bench_function(format!("threshold_{threshold}_4_sharers"), |b| {
            b.iter(|| {
                let params = ProtoParams {
                    singlecast_threshold: threshold,
                    ..ProtoParams::default()
                };
                let mut eng = Engine::new(
                    SystemSize::new(16).unwrap(),
                    params,
                    NetParams::default(),
                    ProtocolKind::Queuing,
                );
                let a = Addr::new(NodeId::new(0), 0);
                for n in 1..=4u16 {
                    eng.issue(eng.now(), NodeId::new(n), MemOp::Load, a);
                    eng.run();
                }
                let t0 = eng.now();
                eng.issue(t0, NodeId::new(1), MemOp::Store, a);
                eng.run();
                black_box(eng.now().since(t0).as_ns())
            })
        });
    }
    g.finish();
}

/// Update protocol + L3 vs invalidation for a CG-like producer/consumer
/// pattern: simulated time per round.
fn ablation_update_protocol(c: &mut Harness) {
    let mut g = c.benchmark_group("ablation/update_protocol");
    g.sample_size(10);
    let run = |update: bool| {
        let mut eng = SystemConfig::new(16).unwrap().build();
        let a = Addr::new(NodeId::new(0), 0);
        if update {
            eng.mark_update_block(a);
        }
        for n in 1..=8u16 {
            eng.issue(eng.now(), NodeId::new(n), MemOp::Load, a);
            eng.run();
        }
        let t0 = eng.now();
        for _ in 0..5 {
            eng.issue(eng.now(), NodeId::new(1), MemOp::Store, a);
            eng.run();
            for n in 2..=8u16 {
                eng.issue(eng.now(), NodeId::new(n), MemOp::Load, a);
            }
            eng.run();
        }
        eng.now().since(t0).as_ns()
    };
    g.bench_function("invalidate_rounds", |b| b.iter(|| black_box(run(false))));
    g.bench_function("update_rounds", |b| b.iter(|| black_box(run(true))));
    g.finish();
}

bench_group!(
    benches,
    ablation_directory_precision,
    ablation_multicast,
    ablation_protocol,
    ablation_writeback_pressure,
    ablation_singlecast_threshold,
    ablation_update_protocol
);
bench_main!(benches);
