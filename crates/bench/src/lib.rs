//! Shared helpers for the table/figure regeneration binaries.
//!
//! Every binary in `src/bin/` regenerates one table or figure of the paper
//! and prints the paper's own numbers next to the measured ones, so the
//! comparison (EXPERIMENTS.md) can be refreshed with a single run.

pub mod micro;
pub mod paper;
pub mod traced;

/// Flags shared by the figure binaries: `--trace-out PATH` writes a
/// Chrome `trace_event` JSON of the figure's golden scenario,
/// `--metrics-out PATH` writes the collected histograms and counters
/// (JSON when the path ends in `.json`, flat text otherwise), and
/// `--workers N` runs every engine the binary builds on `N` parallel
/// workers (simulated results and exported artifacts are worker-count
/// invariant; only wall-clock changes). All accept `--flag VALUE` and
/// `--flag=VALUE` forms and coexist with the positional scale argument.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ObsArgs {
    /// Destination for the Chrome trace, if requested.
    pub trace_out: Option<String>,
    /// Destination for the metrics dump, if requested.
    pub metrics_out: Option<String>,
    /// Worker count for every engine the binary runs (default 1).
    pub workers: usize,
}

impl Default for ObsArgs {
    fn default() -> Self {
        ObsArgs {
            trace_out: None,
            metrics_out: None,
            workers: 1,
        }
    }
}

impl ObsArgs {
    /// Parses the shared flags out of the process arguments.
    ///
    /// # Panics
    ///
    /// Panics with a usage message on a flag without a value, an unknown
    /// `--` flag, or a non-positive `--workers` count.
    pub fn parse() -> Self {
        let mut out = ObsArgs::default();
        let mut args = std::env::args().skip(1);
        while let Some(arg) = args.next() {
            let Some(flag) = arg.strip_prefix("--") else {
                continue; // positional (scale) — scale_arg's business
            };
            let (name, value) = match flag.split_once('=') {
                Some((n, v)) => (n.to_owned(), Some(v.to_owned())),
                None => (flag.to_owned(), args.next()),
            };
            let value = value.unwrap_or_else(|| panic!("--{name} requires a value"));
            match name.as_str() {
                "trace-out" => out.trace_out = Some(value),
                "metrics-out" => out.metrics_out = Some(value),
                "workers" => {
                    out.workers = value
                        .parse()
                        .unwrap_or_else(|_| panic!("--workers needs a number, got {value:?}"));
                    assert!(out.workers > 0, "--workers must be >= 1");
                }
                _ => panic!("unknown flag --{name}; known: --trace-out, --metrics-out, --workers"),
            }
        }
        out
    }

    /// The parallel-execution configuration the flags request.
    pub fn parallel(&self) -> cenju4::prelude::ParallelConfig {
        cenju4::prelude::ParallelConfig::with_workers(self.workers)
    }

    /// Whether any artifact was requested.
    pub fn active(&self) -> bool {
        self.trace_out.is_some() || self.metrics_out.is_some()
    }

    /// Writes the requested artifacts from a traced run's collector and
    /// reports each written path on stdout.
    ///
    /// # Errors
    ///
    /// Propagates filesystem errors from writing either artifact.
    pub fn write(&self, col: &cenju4::obs::SpanCollector) -> std::io::Result<()> {
        if let Some(path) = &self.trace_out {
            std::fs::write(path, cenju4::obs::chrome_trace_json(col))?;
            println!("wrote Chrome trace to {path} (open in chrome://tracing or Perfetto)");
        }
        if let Some(path) = &self.metrics_out {
            let m = col.metrics();
            let dump = if path.ends_with(".json") {
                m.to_json()
            } else {
                m.to_text()
            };
            std::fs::write(path, dump)?;
            println!("wrote metrics to {path}");
        }
        Ok(())
    }
}

/// Formats a measured-vs-paper pair with the relative error.
///
/// # Examples
///
/// ```
/// let s = cenju4_bench::vs(1710.0, 1690.0);
/// assert!(s.contains("+1.2%"));
/// ```
pub fn vs(measured: f64, paper: f64) -> String {
    if paper == 0.0 {
        return format!("{measured:.1} (paper: n/a)");
    }
    let err = (measured - paper) / paper * 100.0;
    format!("{measured:.1} (paper {paper:.1}, {err:+.1}%)")
}

/// Reads a problem-scale multiplier from the first *positional* CLI
/// argument (default `default`), skipping over any `--flag`/`--flag=v`
/// pairs so the scale coexists with [`ObsArgs`].
///
/// # Panics
///
/// Panics with a usage message if the argument is not a positive number.
pub fn scale_arg(default: f64) -> f64 {
    let mut args = std::env::args().skip(1);
    while let Some(s) = args.next() {
        if let Some(flag) = s.strip_prefix("--") {
            if !flag.contains('=') {
                args.next(); // skip the flag's value
            }
            continue;
        }
        let v: f64 = s
            .parse()
            .unwrap_or_else(|_| panic!("usage: <binary> [scale]; got {s:?}"));
        assert!(v > 0.0, "scale must be positive");
        return v;
    }
    default
}

/// Prints a rule line of the given width.
pub fn rule(width: usize) {
    println!("{}", "-".repeat(width));
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn vs_formats_error() {
        assert!(vs(110.0, 100.0).contains("+10.0%"));
        assert!(vs(90.0, 100.0).contains("-10.0%"));
        assert!(vs(5.0, 0.0).contains("n/a"));
    }
}
