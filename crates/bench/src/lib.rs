//! Shared helpers for the table/figure regeneration binaries.
//!
//! Every binary in `src/bin/` regenerates one table or figure of the paper
//! and prints the paper's own numbers next to the measured ones, so the
//! comparison (EXPERIMENTS.md) can be refreshed with a single run.

pub mod micro;
pub mod paper;

/// Formats a measured-vs-paper pair with the relative error.
///
/// # Examples
///
/// ```
/// let s = cenju4_bench::vs(1710.0, 1690.0);
/// assert!(s.contains("+1.2%"));
/// ```
pub fn vs(measured: f64, paper: f64) -> String {
    if paper == 0.0 {
        return format!("{measured:.1} (paper: n/a)");
    }
    let err = (measured - paper) / paper * 100.0;
    format!("{measured:.1} (paper {paper:.1}, {err:+.1}%)")
}

/// Reads a problem-scale multiplier from the first CLI argument
/// (default `default`).
///
/// # Panics
///
/// Panics with a usage message if the argument is not a positive number.
pub fn scale_arg(default: f64) -> f64 {
    match std::env::args().nth(1) {
        None => default,
        Some(s) => {
            let v: f64 = s
                .parse()
                .unwrap_or_else(|_| panic!("usage: <binary> [scale]; got {s:?}"));
            assert!(v > 0.0, "scale must be positive");
            v
        }
    }
}

/// Prints a rule line of the given width.
pub fn rule(width: usize) {
    println!("{}", "-".repeat(width));
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn vs_formats_error() {
        assert!(vs(110.0, 100.0).contains("+10.0%"));
        assert!(vs(90.0, 100.0).contains("-10.0%"));
        assert!(vs(5.0, 0.0).contains("n/a"));
    }
}
