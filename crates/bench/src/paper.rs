//! The paper's published numbers, transcribed for side-by-side reports.

/// Table 2: load-miss latencies in ns, rows (private, shared local clean,
/// shared remote clean, shared local dirty, shared remote dirty) for
/// 2/4/6 network stages.
pub const TABLE2: [(u16, [u64; 5]); 3] = [
    (16, [470, 610, 1690, 1900, 3120]),
    (128, [470, 610, 2210, 2480, 4170]),
    (1024, [470, 610, 2730, 3060, 5220]),
];

/// Figure 10 headline estimates at 1024 sharers on the full machine, ns.
pub const FIG10_MULTICAST_1024: u64 = 6_300;
/// Without the multicast/gather hardware.
pub const FIG10_SINGLECAST_1024: u64 = 184_000;

/// Figure 11(b): parallel efficiency of the dsm(2)-with-mapping programs
/// at the paper's node counts (BT/SP at 64 nodes, CG/FT at 128).
pub const FIG11B_DSM2_EFFICIENCY: [(&str, u16, f64); 4] = [
    ("BT", 64, 0.97),
    ("CG", 128, 0.20), // saturated; Fig. 12 shows ~26x at 128 nodes
    ("FT", 128, 0.81),
    ("SP", 64, 0.71),
];

/// Figure 11(b): rough efficiency of the naive dsm(1) programs — "only
/// about 20% on BT, CG and SP, and 40% on FT".
pub const FIG11B_DSM1_EFFICIENCY: [(&str, f64); 4] =
    [("BT", 0.20), ("CG", 0.20), ("FT", 0.40), ("SP", 0.20)];

/// Table 3 (per app at its node count): L2 miss ratio and the
/// private/local/remote breakdown of misses for dsm(1)/dsm(2), with (m)
/// and without (n) data mappings. Values in percent.
#[derive(Clone, Copy, Debug)]
pub struct Table3Row {
    /// Application name.
    pub app: &'static str,
    /// Variant name (`dsm(1)` or `dsm(2)`).
    pub variant: &'static str,
    /// With data mappings?
    pub mapped: bool,
    /// Secondary-cache miss ratio, percent.
    pub miss_ratio: f64,
    /// Private share of misses, percent.
    pub private: f64,
    /// Shared-local share, percent.
    pub local: f64,
    /// Shared-remote share, percent.
    pub remote: f64,
}

/// The sixteen rows of Table 3.
pub const TABLE3: [Table3Row; 16] = [
    Table3Row {
        app: "BT",
        variant: "dsm(1)",
        mapped: false,
        miss_ratio: 1.49,
        private: 2.4,
        local: 1.7,
        remote: 95.9,
    },
    Table3Row {
        app: "BT",
        variant: "dsm(1)",
        mapped: true,
        miss_ratio: 1.47,
        private: 2.2,
        local: 63.7,
        remote: 34.1,
    },
    Table3Row {
        app: "BT",
        variant: "dsm(2)",
        mapped: false,
        miss_ratio: 0.84,
        private: 76.3,
        local: 0.6,
        remote: 23.0,
    },
    Table3Row {
        app: "BT",
        variant: "dsm(2)",
        mapped: true,
        miss_ratio: 0.85,
        private: 76.1,
        local: 12.7,
        remote: 11.2,
    },
    Table3Row {
        app: "CG",
        variant: "dsm(1)",
        mapped: false,
        miss_ratio: 1.48,
        private: 27.8,
        local: 0.6,
        remote: 71.6,
    },
    Table3Row {
        app: "CG",
        variant: "dsm(1)",
        mapped: true,
        miss_ratio: 1.48,
        private: 26.7,
        local: 0.7,
        remote: 72.6,
    },
    Table3Row {
        app: "CG",
        variant: "dsm(2)",
        mapped: false,
        miss_ratio: 1.48,
        private: 28.2,
        local: 0.6,
        remote: 71.1,
    },
    Table3Row {
        app: "CG",
        variant: "dsm(2)",
        mapped: true,
        miss_ratio: 1.44,
        private: 25.9,
        local: 0.7,
        remote: 73.4,
    },
    Table3Row {
        app: "FT",
        variant: "dsm(1)",
        mapped: false,
        miss_ratio: 0.84,
        private: 30.2,
        local: 0.6,
        remote: 69.2,
    },
    Table3Row {
        app: "FT",
        variant: "dsm(1)",
        mapped: true,
        miss_ratio: 0.81,
        private: 30.8,
        local: 50.9,
        remote: 18.3,
    },
    Table3Row {
        app: "FT",
        variant: "dsm(2)",
        mapped: false,
        miss_ratio: 0.69,
        private: 57.2,
        local: 0.4,
        remote: 42.4,
    },
    Table3Row {
        app: "FT",
        variant: "dsm(2)",
        mapped: true,
        miss_ratio: 0.77,
        private: 59.2,
        local: 23.0,
        remote: 17.9,
    },
    Table3Row {
        app: "SP",
        variant: "dsm(1)",
        mapped: false,
        miss_ratio: 1.77,
        private: 4.5,
        local: 1.5,
        remote: 93.9,
    },
    Table3Row {
        app: "SP",
        variant: "dsm(1)",
        mapped: true,
        miss_ratio: 1.84,
        private: 4.3,
        local: 36.0,
        remote: 59.7,
    },
    Table3Row {
        app: "SP",
        variant: "dsm(2)",
        mapped: false,
        miss_ratio: 1.04,
        private: 24.7,
        local: 1.9,
        remote: 73.3,
    },
    Table3Row {
        app: "SP",
        variant: "dsm(2)",
        mapped: true,
        miss_ratio: 1.02,
        private: 24.5,
        local: 36.9,
        remote: 38.6,
    },
];

/// Table 4: per-app characteristics at the small and large node counts:
/// (app, nodes, sync %, miss ratio %, remote-miss % of misses).
pub const TABLE4: [(&str, u16, f64, f64, f64); 8] = [
    ("BT", 16, 3.84, 0.86, 5.59),
    ("BT", 64, 7.72, 0.82, 11.9),
    ("CG", 16, 7.04, 2.73, 9.31),
    ("CG", 128, 25.1, 2.39, 80.9),
    ("FT", 16, 1.67, 0.77, 15.4),
    ("FT", 128, 8.92, 0.79, 19.3),
    ("SP", 16, 5.42, 1.24, 19.4),
    ("SP", 64, 12.8, 1.03, 46.4),
];

/// Figure 12: speedups of the dsm(2)+mapping programs (digitized):
/// (app, nodes, speedup).
pub const FIG12: [(&str, u16, f64); 8] = [
    ("BT", 16, 15.2),
    ("BT", 64, 62.0),
    ("CG", 16, 10.0),
    ("CG", 128, 26.0),
    ("FT", 16, 14.0),
    ("FT", 128, 104.0),
    ("SP", 16, 13.5),
    ("SP", 64, 45.0),
];

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table3_breakdowns_sum_to_100() {
        for r in TABLE3 {
            let sum = r.private + r.local + r.remote;
            assert!(
                (sum - 100.0).abs() < 1.0,
                "{} {} mapped={} sums to {sum}",
                r.app,
                r.variant,
                r.mapped
            );
        }
    }

    #[test]
    fn table2_has_three_stage_columns() {
        assert_eq!(TABLE2.len(), 3);
        for (_, row) in TABLE2 {
            assert!(row.windows(2).all(|w| w[0] <= w[1]), "rows are increasing");
        }
    }
}
