//! Traced replays of the paper-figure scenarios, for `--trace-out` /
//! `--metrics-out` and the `obs-smoke` CI tier.
//!
//! The figure binaries measure with bare engines (observability adds
//! nothing to a latency probe); when the user asks for artifacts, these
//! helpers re-run the *golden* fig10/fig12 scenarios — the exact access
//! sequences pinned byte-for-byte by `tests/golden_hotpath.rs` — with a
//! [`SpanCollector`] attached, so the exported trace describes the same
//! run the repository's bit-identity guard protects.

use cenju4::prelude::*;

/// A traced engine after running a scenario, plus how many accesses the
/// scenario issued — every one of them must have produced a complete
/// span.
pub struct TracedRun {
    /// The quiescent engine, collector still attached.
    pub eng: Engine,
    /// Accesses issued by the scenario.
    pub issued: u64,
}

impl TracedRun {
    /// The attached collector.
    pub fn collector(&self) -> &SpanCollector {
        self.eng
            .observer::<SpanCollector>()
            .expect("traced run always attaches a SpanCollector")
    }
}

fn traced_engine(nodes: u16, workers: usize) -> Engine {
    let cfg = SystemConfig::builder(nodes)
        .parallel(ParallelConfig::with_workers(workers))
        .build()
        .expect("valid node count");
    let sys = cfg.sys;
    let mut eng = cfg.build();
    eng.add_observer(Box::new(SpanCollector::new(sys)));
    eng
}

fn access(eng: &mut Engine, n: u16, op: MemOp, a: Addr) {
    eng.issue(eng.now(), NodeId::new(n), op, a);
    eng.run();
}

/// The Figure 10 golden scenario (16 nodes: four sharers warmed by
/// loads, then a store from a sharer), traced, on `workers` parallel
/// workers — the exported artifacts are worker-count invariant.
pub fn fig10_run(workers: usize) -> TracedRun {
    let mut eng = traced_engine(16, workers);
    let a = Addr::new(NodeId::new(0), 1);
    for s in 1..=4 {
        access(&mut eng, s, MemOp::Load, a);
    }
    access(&mut eng, 1, MemOp::Store, a);
    TracedRun { eng, issued: 5 }
}

/// The Figure 12 golden scenario (64 nodes, seeded mixed workload of 200
/// loads/stores over eight blocks on two homes), traced, on `workers`
/// parallel workers — the exported artifacts are worker-count invariant.
pub fn fig12_run(workers: usize) -> TracedRun {
    let mut eng = traced_engine(64, workers);
    let mut rng = SplitMix64::new(0xF1612);
    let blocks: Vec<Addr> = (0..8)
        .map(|b| Addr::new(NodeId::new((b % 2) as u16), 1 + b / 2))
        .collect();
    for _ in 0..200 {
        let n = rng.next_below(64) as u16;
        let op = if rng.next_below(3) == 0 {
            MemOp::Store
        } else {
            MemOp::Load
        };
        let a = blocks[rng.next_below(8) as usize];
        access(&mut eng, n, op, a);
    }
    TracedRun { eng, issued: 200 }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cenju4::obs::json::validate_chrome_trace;

    #[test]
    fn fig10_every_access_has_a_complete_span() {
        let run = fig10_run(1);
        let col = run.collector();
        assert_eq!(col.open_span_count(), 0);
        assert!(col.completed_span_count() as u64 >= run.issued);
        let shape = validate_chrome_trace(&chrome_trace_json(col)).unwrap();
        assert!(shape.complete_spans as u64 >= run.issued);
    }

    #[test]
    fn fig12_every_access_has_a_complete_span() {
        let run = fig12_run(1);
        let col = run.collector();
        assert_eq!(col.open_span_count(), 0);
        assert!(col.completed_span_count() as u64 >= run.issued);
        let shape = validate_chrome_trace(&chrome_trace_json(col)).unwrap();
        assert!(shape.complete_spans as u64 >= run.issued);
        // The mixed workload exercises misses, upgrades and writebacks.
        let m = col.metrics();
        assert!(m.latency_summary("load-miss").is_some());
        assert!(m.latency_summary("hit").is_some());
    }

    #[test]
    fn repeated_runs_export_identical_percentiles() {
        let a = fig12_run(1);
        let b = fig12_run(1);
        for class in ["hit", "load-miss", "store-miss", "upgrade"] {
            assert_eq!(
                a.collector().metrics().latency_summary(class),
                b.collector().metrics().latency_summary(class),
                "{class} percentiles must be identical across repeated runs"
            );
        }
        assert_eq!(
            a.collector().event_fingerprint(),
            b.collector().event_fingerprint()
        );
    }

    #[test]
    fn worker_counts_export_identical_artifacts() {
        // The --workers flag must be invisible in everything a figure
        // binary exports: span stream, metrics, Chrome trace.
        let a = fig12_run(1);
        let b = fig12_run(4);
        assert_eq!(
            a.collector().event_fingerprint(),
            b.collector().event_fingerprint()
        );
        assert_eq!(
            chrome_trace_json(a.collector()),
            chrome_trace_json(b.collector())
        );
        assert_eq!(
            a.collector().metrics().to_json(),
            b.collector().metrics().to_json()
        );
    }
}
