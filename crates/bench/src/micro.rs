//! A minimal, self-contained micro-benchmark harness.
//!
//! The workspace must build with no network access, so the microbenchmarks
//! run on this tiny harness instead of Criterion. It keeps the same call
//! shape (`Harness::bench_function`, groups, `black_box`, group/main
//! macros) so benchmark bodies read the same way, but does only what we
//! need: auto-calibrate an iteration count, take a handful of samples, and
//! report the per-iteration time.
//!
//! Enable the targets with `cargo bench -p cenju4-bench --features
//! bench-harness`.

pub use std::hint::black_box;
use std::time::{Duration, Instant};

/// Minimum wall-clock time for one measured batch of iterations.
const BATCH_FLOOR: Duration = Duration::from_millis(10);
/// Number of measured batches per benchmark.
const SAMPLES: usize = 5;

/// One benchmark measurement, in nanoseconds per iteration.
#[derive(Clone, Debug)]
pub struct Measurement {
    pub name: String,
    pub median_ns: f64,
    pub min_ns: f64,
    pub iters: u64,
}

/// The top-level harness handed to every benchmark function.
#[derive(Default)]
pub struct Harness {
    results: Vec<Measurement>,
}

impl Harness {
    pub fn new() -> Self {
        Harness::default()
    }

    /// Runs a single named benchmark.
    pub fn bench_function(
        &mut self,
        name: impl Into<String>,
        mut f: impl FnMut(&mut Bencher),
    ) -> &mut Self {
        let mut b = Bencher { result: None };
        f(&mut b);
        self.record(name.into(), b);
        self
    }

    /// Opens a named group; benchmarks in it are reported as `group/name`.
    pub fn benchmark_group(&mut self, name: &str) -> Group<'_> {
        Group {
            harness: self,
            prefix: name.to_string(),
        }
    }

    fn record(&mut self, name: String, b: Bencher) {
        if let Some(mut m) = b.result {
            m.name = name;
            println!(
                "{:<44} {:>12.1} ns/iter (min {:>10.1}, {} samples x {} iters)",
                m.name, m.median_ns, m.min_ns, SAMPLES, m.iters
            );
            self.results.push(m);
        }
    }

    /// Prints a closing line; called by [`bench_main!`].
    pub fn summary(&self) {
        println!("{} benchmarks run", self.results.len());
    }

    /// All measurements taken so far.
    pub fn results(&self) -> &[Measurement] {
        &self.results
    }
}

/// A benchmark group: names are prefixed, `finish` closes the group.
pub struct Group<'a> {
    harness: &'a mut Harness,
    prefix: String,
}

impl Group<'_> {
    pub fn bench_function(
        &mut self,
        name: impl Into<String>,
        mut f: impl FnMut(&mut Bencher),
    ) -> &mut Self {
        let full = format!("{}/{}", self.prefix, name.into());
        let mut b = Bencher { result: None };
        f(&mut b);
        self.harness.record(full, b);
        self
    }

    /// Accepted for call-shape compatibility; the harness always takes
    /// [`SAMPLES`] batches.
    pub fn sample_size(&mut self, _n: usize) -> &mut Self {
        self
    }

    /// Parameterised benchmark: the id is appended to the group name.
    pub fn bench_with_input<I>(
        &mut self,
        id: BenchId,
        input: &I,
        mut f: impl FnMut(&mut Bencher, &I),
    ) -> &mut Self {
        let full = format!("{}/{}", self.prefix, id.0);
        let mut b = Bencher { result: None };
        f(&mut b, input);
        self.harness.record(full, b);
        self
    }

    pub fn finish(&mut self) {}
}

/// A benchmark identifier built from a displayable parameter.
pub struct BenchId(String);

impl BenchId {
    pub fn from_parameter(p: impl std::fmt::Display) -> Self {
        BenchId(p.to_string())
    }
}

/// Runs the closed-over workload and measures it.
pub struct Bencher {
    result: Option<Measurement>,
}

impl Bencher {
    /// Measures `f`: calibrates an iteration count so one batch takes at
    /// least [`BATCH_FLOOR`], then times [`SAMPLES`] batches and keeps the
    /// median and minimum per-iteration time.
    pub fn iter<R>(&mut self, mut f: impl FnMut() -> R) {
        let mut iters: u64 = 1;
        let iters = loop {
            let t = Instant::now();
            for _ in 0..iters {
                black_box(f());
            }
            let dt = t.elapsed();
            if dt >= BATCH_FLOOR || iters >= 1 << 30 {
                break iters;
            }
            // Jump close to the target batch size instead of doubling
            // forever on very fast bodies.
            let scale =
                (BATCH_FLOOR.as_nanos() as u64 / dt.as_nanos().max(1) as u64).clamp(2, 1024);
            iters = iters.saturating_mul(scale);
        };
        let mut samples = [0f64; SAMPLES];
        for s in samples.iter_mut() {
            let t = Instant::now();
            for _ in 0..iters {
                black_box(f());
            }
            *s = t.elapsed().as_nanos() as f64 / iters as f64;
        }
        samples.sort_by(|a, b| a.total_cmp(b));
        self.result = Some(Measurement {
            name: String::new(),
            median_ns: samples[SAMPLES / 2],
            min_ns: samples[0],
            iters,
        });
    }
}

/// Bundles benchmark functions into one group function, mirroring
/// Criterion's `criterion_group!`.
#[macro_export]
macro_rules! bench_group {
    ($name:ident, $($f:path),+ $(,)?) => {
        pub fn $name(h: &mut $crate::micro::Harness) {
            $( $f(h); )+
        }
    };
}

/// Generates `main` for a bench target, mirroring `criterion_main!`.
#[macro_export]
macro_rules! bench_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            let mut h = $crate::micro::Harness::new();
            $( $group(&mut h); )+
            h.summary();
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn measures_a_trivial_body() {
        let mut h = Harness::new();
        h.bench_function("noop", |b| b.iter(|| black_box(1u64 + 1)));
        assert_eq!(h.results().len(), 1);
        assert!(h.results()[0].median_ns >= 0.0);
        assert_eq!(h.results()[0].name, "noop");
    }

    #[test]
    fn groups_prefix_names() {
        let mut h = Harness::new();
        let mut g = h.benchmark_group("grp");
        g.bench_function("x", |b| b.iter(|| black_box(2u32.pow(8))));
        g.bench_with_input(BenchId::from_parameter(7), &7u32, |b, &k| {
            b.iter(|| black_box(k * 3))
        });
        g.finish();
        assert_eq!(h.results()[0].name, "grp/x");
        assert_eq!(h.results()[1].name, "grp/7");
    }
}
