//! Regenerates **Table 1**: scalability of directory schemes in hardware
//! cost and access cost, derived from the quantitative cost model.
//!
//! Run with: `cargo run --release -p cenju4-bench --bin table1_directory_cost`

use cenju4::directory::cost::{table1, SchemeCost};

fn main() {
    println!("Table 1: characteristics of directory schemes");
    println!("(o = scalable, x = not scalable; derived from the cost model)\n");
    println!("{:<30} {:>14} {:>12}", "", "hardware cost", "access cost");
    for row in table1() {
        println!(
            "{:<30} {:>14} {:>12}",
            row.scheme.name(),
            row.hardware.to_string(),
            row.access.to_string()
        );
    }

    println!("\nunderlying quantities:");
    println!(
        "{:<30} {:>12} {:>12} {:>22}",
        "", "bits @16", "bits @1024", "accesses @1024 sharers"
    );
    for s in SchemeCost::ALL {
        println!(
            "{:<30} {:>12} {:>12} {:>22}",
            s.name(),
            s.storage_bits_per_block(16),
            s.storage_bits_per_block(1024),
            s.accesses_to_enumerate(1024, 1024)
        );
    }
}
