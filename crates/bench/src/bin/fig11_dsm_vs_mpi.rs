//! Regenerates **Figure 11**: (a) program rewriting ratios — the paper's
//! own human-effort data — and (b) parallel efficiency of mpi / dsm(1) /
//! dsm(2) with and without data mappings, measured on the synthetic
//! kernels at the paper's node counts (BT/SP: 64, CG/FT: 128).
//!
//! Run with:
//! `cargo run --release -p cenju4-bench --bin fig11_dsm_vs_mpi [scale]`
//! (scale defaults to 1.0; smaller is faster, larger is closer asymptotic)

use cenju4::prelude::*;
use cenju4::workloads::rewrite::paper_rewriting_ratios;
use cenju4::workloads::runner;
use cenju4_bench::paper::{FIG11B_DSM1_EFFICIENCY, FIG11B_DSM2_EFFICIENCY};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let scale = cenju4_bench::scale_arg(2.0);

    println!("Figure 11(a): program rewriting ratios (paper's measurements;");
    println!("a human-effort metric on the Fortran sources — see DESIGN.md)\n");
    println!(
        "{:>4} {:>8} {:>10} {:>10} {:>10} {:>10}",
        "app", "mpi", "dsm1-nm", "dsm1", "dsm2-nm", "dsm2"
    );
    for r in paper_rewriting_ratios() {
        println!(
            "{:>4} {:>7.0}% {:>9.1}% {:>9.1}% {:>9.1}% {:>9.1}%",
            r.app.name(),
            r.mpi * 100.0,
            r.dsm1_nomap * 100.0,
            r.dsm1 * 100.0,
            r.dsm2_nomap * 100.0,
            r.dsm2 * 100.0
        );
    }

    println!("\nFigure 11(b): parallel efficiency, measured (scale {scale})\n");
    println!(
        "{:>4} {:>6} {:>8} {:>8} {:>8} {:>8} {:>8}  {:>14} {:>14}",
        "app", "nodes", "mpi", "dsm1-nm", "dsm1", "dsm2-nm", "dsm2", "paper dsm1", "paper dsm2"
    );
    for app in AppKind::ALL {
        let n = app.paper_nodes();
        let mpi = runner::efficiency(app, Variant::Mpi, true, n, scale)?;
        let d1n = runner::efficiency(app, Variant::Dsm1, false, n, scale)?;
        let d1 = runner::efficiency(app, Variant::Dsm1, true, n, scale)?;
        let d2n = runner::efficiency(app, Variant::Dsm2, false, n, scale)?;
        let d2 = runner::efficiency(app, Variant::Dsm2, true, n, scale)?;
        let p1 = FIG11B_DSM1_EFFICIENCY
            .iter()
            .find(|(a, _)| *a == app.name())
            .map(|(_, e)| *e)
            .unwrap_or(0.0);
        let p2 = FIG11B_DSM2_EFFICIENCY
            .iter()
            .find(|(a, _, _)| *a == app.name())
            .map(|(_, _, e)| *e)
            .unwrap_or(0.0);
        println!(
            "{:>4} {:>6} {:>7.0}% {:>7.0}% {:>7.0}% {:>7.0}% {:>7.0}%  {:>13.0}% {:>13.0}%",
            app.name(),
            n,
            mpi * 100.0,
            d1n * 100.0,
            d1 * 100.0,
            d2n * 100.0,
            d2 * 100.0,
            p1 * 100.0,
            p2 * 100.0
        );
    }
    println!("\nExpected shape: dsm(2)+mapping approaches mpi on BT/FT; dsm(1)");
    println!("stays low; CG is low for every shared-memory variant.");
    Ok(())
}
