//! Smoke test for the observability pipeline, run by the `obs-smoke`
//! CI tier.
//!
//! Replays the fig10 and fig12 golden scenarios with span tracing,
//! validates the exported Chrome `trace_event` JSON against the format's
//! shape (every event has a `ph`; every `"X"` complete event carries
//! `name`/`pid`/`tid`/`ts`/`dur`), asserts the span-leak oracle (every
//! opened span closed) and that every issued access produced a complete
//! span, and checks the metrics dump round-trips through the JSON
//! parser. `--trace-out`/`--metrics-out` write the fig12 artifacts for
//! inspection.
//!
//! Run with: `cargo run --release -p cenju4-bench --bin obs_smoke`

use cenju4::obs::json::validate_chrome_trace;
use cenju4::obs::{chrome_trace_json, json};
use cenju4_bench::traced::{fig10_run, fig12_run, TracedRun};
use cenju4_bench::ObsArgs;

fn check(name: &str, run: &TracedRun) {
    let col = run.collector();
    assert_eq!(
        col.open_span_count(),
        0,
        "{name}: span leak — a transaction opened a span and never closed it"
    );
    let completed = col.completed_span_count() as u64;
    assert!(
        completed >= run.issued,
        "{name}: {completed} complete spans for {} issued accesses",
        run.issued
    );
    let doc = chrome_trace_json(col);
    let shape =
        validate_chrome_trace(&doc).unwrap_or_else(|e| panic!("{name}: invalid Chrome trace: {e}"));
    assert!(
        shape.complete_spans as u64 >= run.issued,
        "{name}: trace has {} X events for {} issued accesses",
        shape.complete_spans,
        run.issued
    );
    let metrics = json::parse(&col.metrics().to_json())
        .unwrap_or_else(|e| panic!("{name}: metrics JSON does not parse: {e}"));
    let closed = metrics
        .get("counters")
        .and_then(|c| c.get("span.closed"))
        .and_then(json::Json::as_u64)
        .unwrap_or(0);
    assert_eq!(
        closed, completed,
        "{name}: span.closed counter disagrees with the collector"
    );
    println!(
        "{name}: ok — {} spans, {} trace events ({} complete, {} instants)",
        completed, shape.events, shape.complete_spans, shape.instants
    );
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let obs = ObsArgs::parse();

    let f10 = fig10_run(obs.workers);
    check("fig10", &f10);

    let f12 = fig12_run(obs.workers);
    check("fig12", &f12);

    // Percentiles are a pure function of the deterministic schedule.
    let again = fig12_run(obs.workers);
    for class in ["hit", "load-miss", "store-miss", "upgrade"] {
        assert_eq!(
            f12.collector().metrics().latency_summary(class),
            again.collector().metrics().latency_summary(class),
            "{class}: percentiles differ across identical runs"
        );
    }
    println!("fig12 repeat: percentiles identical");

    obs.write(f12.collector())?;
    println!("obs-smoke: all checks passed");
    Ok(())
}
