//! Regenerates **Figure 12**: speedups of the dsm(2)-with-mapping programs
//! as the machine grows — BT and SP to 64 nodes, CG and FT to 128. The
//! paper's headline: BT/FT/SP keep speeding up, CG saturates.
//!
//! Run with: `cargo run --release -p cenju4-bench --bin fig12_speedups [scale]`
//!
//! `--trace-out trace.json` additionally replays the figure's golden
//! mixed-workload scenario with span tracing and writes a Chrome
//! `trace_event` file; `--metrics-out metrics.txt` dumps its latency
//! histograms and counters; `--workers N` runs every engine on N
//! parallel workers (speedups are identical — only wall-clock changes).

use cenju4::prelude::*;
use cenju4::workloads::runner;
use cenju4_bench::paper::FIG12;
use cenju4_bench::ObsArgs;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let obs = ObsArgs::parse();
    let scale = cenju4_bench::scale_arg(2.0);
    println!("Figure 12: speedups of dsm(2)+mapping programs (scale {scale})\n");
    for app in AppKind::ALL {
        let max = app.paper_nodes();
        let mut counts: Vec<u16> = vec![2, 4, 8, 16, 32, 64];
        if max == 128 {
            counts.push(128);
        }
        print!("{:>4}:", app.name());
        // One sweep worker per machine size; results come back in
        // `counts` order regardless of the thread count.
        let speedups =
            runner::speedups_parallel(app, Variant::Dsm2, true, &counts, scale, obs.parallel())?;
        for (&n, s) in counts.iter().zip(&speedups) {
            print!("  {n}n={s:.1}x");
        }
        // Paper's digitized endpoints for reference.
        let refs: Vec<String> = FIG12
            .iter()
            .filter(|(a, _, _)| *a == app.name())
            .map(|(_, n, s)| format!("{n}n={s:.0}x"))
            .collect();
        println!("   [paper: {}]", refs.join(", "));
    }
    println!("\nExpected shape: near-linear for BT/FT/SP; CG flattens well below");
    println!("its node count (the whole-vector re-read pattern of Section 4.2.3).");

    if obs.active() {
        let run = cenju4_bench::traced::fig12_run(obs.workers);
        obs.write(run.collector())?;
    }
    Ok(())
}
