//! Regenerates **Table 3**: secondary-cache miss ratio and the
//! private/local/remote breakdown of misses for the dsm(1) and dsm(2)
//! programs, with and without data mappings, at the paper's node counts.
//!
//! Run with:
//! `cargo run --release -p cenju4-bench --bin table3_miss_characteristics [scale]`

use cenju4::prelude::*;
use cenju4::workloads::runner;
use cenju4_bench::paper::TABLE3;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let scale = cenju4_bench::scale_arg(2.0);
    println!("Table 3: secondary cache miss characteristics (scale {scale})");
    println!("measured | paper, percentages\n");
    println!(
        "{:>4} {:>7} {:>7} {:>15} {:>17} {:>17} {:>17}",
        "app", "variant", "mapped", "miss ratio", "private", "local", "remote"
    );
    for app in AppKind::ALL {
        let nodes = app.paper_nodes();
        for variant in [Variant::Dsm1, Variant::Dsm2] {
            for mapped in [false, true] {
                let r = runner::run_workload(app, variant, mapped, nodes, scale)?;
                let paper = TABLE3
                    .iter()
                    .find(|p| {
                        p.app == app.name() && p.variant == variant.name() && p.mapped == mapped
                    })
                    .expect("paper row");
                println!(
                    "{:>4} {:>7} {:>7} {:>6.2} | {:>5.2} {:>7.1} | {:>6.1} {:>7.1} | {:>6.1} {:>7.1} | {:>6.1}",
                    app.name(),
                    variant.name(),
                    if mapped { "yes" } else { "no" },
                    r.miss_ratio() * 100.0,
                    paper.miss_ratio,
                    r.miss_fraction(AccessClass::Private) * 100.0,
                    paper.private,
                    r.miss_fraction(AccessClass::SharedLocal) * 100.0,
                    paper.local,
                    r.miss_fraction(AccessClass::SharedRemote) * 100.0,
                    paper.remote,
                );
            }
        }
        println!();
    }
    println!("Expected shape: dsm(2) cuts the miss ratio and shifts misses to");
    println!("private; mapping converts remote misses to local ones on BT/FT/SP;");
    println!("CG is insensitive to both knobs.");
    Ok(())
}
