//! Measures the cost of the link-level recovery layer: a fixed
//! cross-node workload is run on fabrics of increasing loss rate with
//! recovery armed, against a lossless baseline. Reports the mean access
//! latency and the recovery counters per point, and writes the
//! machine-readable results to `BENCH_fault_overhead.json`.
//!
//! The headline numbers:
//!
//! * **0‰ armed vs baseline** — the zero-cost-when-healthy guarantee:
//!   with a lossless plan the layer stays unarmed and the overhead is
//!   exactly zero (the golden-trace tests prove bit-identity; this
//!   bench shows the timing consequence).
//! * **rising loss** — each retransmission round and gather re-issue
//!   stretches the tail; latency degrades smoothly instead of the
//!   unprotected fabric's hang.
//!
//! Run with: `cargo run --release -p cenju4-bench --bin fault_overhead`

use cenju4::prelude::*;

/// One measured configuration.
struct Point {
    drop_permille: u16,
    mean_latency_ns: u64,
    completed: u64,
    faults_injected: u64,
    retransmits: u64,
    gather_reissues: u64,
    link_discards: u64,
}

/// Issues `rounds` accesses per node (alternating stores and loads on
/// two home blocks) and runs each to completion, returning the point.
fn measure(nodes: u16, rounds: u32, drop_permille: u16) -> Point {
    let mut builder = SystemConfig::builder(nodes).recovery(RecoveryParams::default());
    if drop_permille > 0 {
        builder = builder.fault_plan(FaultPlan::random(0xBE7C, drop_permille));
    }
    let cfg = builder.build().expect("valid node count");
    let mut eng = cfg.build();
    let mut completed = 0u64;
    let mut latency_ns = 0u64;
    for i in 0..rounds {
        for n in 0..nodes {
            let op = if (n as u32 + i).is_multiple_of(2) {
                MemOp::Store
            } else {
                MemOp::Load
            };
            eng.issue(
                eng.now(),
                NodeId::new(n),
                op,
                Addr::new(NodeId::new(0), i % 2),
            );
            for note in eng.run() {
                match note {
                    Notification::Completed { .. } => {
                        completed += 1;
                        latency_ns += note.latency().expect("completion has latency").as_ns();
                    }
                    Notification::RecoveryFailed { at, error } => {
                        panic!("recovery failed at {at:?}: {error}")
                    }
                    _ => {}
                }
            }
        }
    }
    assert_eq!(eng.outstanding_txn_count(), 0, "accesses left outstanding");
    let s = eng.stats();
    Point {
        drop_permille,
        mean_latency_ns: latency_ns / completed.max(1),
        completed,
        faults_injected: s.faults_injected.get(),
        retransmits: s.retransmits.get(),
        gather_reissues: s.gather_reissues.get(),
        link_discards: s.link_discards.get(),
    }
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    const NODES: u16 = 8;
    const ROUNDS: u32 = 16;
    let rates = [0u16, 5, 20, 50];

    // Each point is an independent deterministic simulation.
    let points = sweep(&rates, |&p| measure(NODES, ROUNDS, p));
    // Overhead is on the mean access latency: wall-clock quiescence also
    // waits for armed timers to self-drain, which only measures the
    // timeout parameters, not the protocol work.
    let base = points[0].mean_latency_ns.max(1);

    println!("recovery-layer overhead, {NODES} nodes x {ROUNDS} rounds:");
    println!(
        "{:>6}  {:>13}  {:>9}  {:>7}  {:>8}  {:>8}  {:>8}",
        "drop", "latency (us)", "overhead", "faults", "retrans", "reissue", "discard"
    );
    let mut json = String::from("{\n  \"bench\": \"fault_overhead\",\n");
    json.push_str(&format!(
        "  \"nodes\": {NODES},\n  \"rounds\": {ROUNDS},\n  \"points\": [\n"
    ));
    for (i, p) in points.iter().enumerate() {
        let overhead = p.mean_latency_ns as f64 / base as f64 - 1.0;
        println!(
            "{:>4}\u{2030}  {:>13.2}  {:>8.1}%  {:>7}  {:>8}  {:>8}  {:>8}",
            p.drop_permille,
            p.mean_latency_ns as f64 / 1000.0,
            overhead * 100.0,
            p.faults_injected,
            p.retransmits,
            p.gather_reissues,
            p.link_discards,
        );
        json.push_str(&format!(
            "    {{\"drop_permille\": {}, \"mean_latency_ns\": {}, \
             \"completed\": {}, \"overhead_pct\": {:.2}, \"faults_injected\": {}, \
             \"retransmits\": {}, \"gather_reissues\": {}, \"link_discards\": {}}}{}\n",
            p.drop_permille,
            p.mean_latency_ns,
            p.completed,
            overhead * 100.0,
            p.faults_injected,
            p.retransmits,
            p.gather_reissues,
            p.link_discards,
            if i + 1 == points.len() { "" } else { "," },
        ));
    }
    json.push_str("  ]\n}\n");
    std::fs::write("BENCH_fault_overhead.json", &json)?;
    println!("\nwrote BENCH_fault_overhead.json");
    println!("Expected shape: 0\u{2030} is the unarmed baseline (zero overhead by");
    println!("construction); mean latency then grows with the loss rate as");
    println!("retransmission and re-issue timeouts stretch faulted accesses.");
    Ok(())
}
