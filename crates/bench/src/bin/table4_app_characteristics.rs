//! Regenerates **Table 4**: per-application characteristics at the small
//! (16-node) and large (64/128-node) configurations — execution time,
//! synchronization fraction, access-class breakdown, miss ratio, and the
//! miss-class breakdown whose remote growth explains the scalability
//! limits (especially CG's).
//!
//! Run with:
//! `cargo run --release -p cenju4-bench --bin table4_app_characteristics [scale]`

use cenju4::prelude::*;
use cenju4::workloads::{runner, KernelProgram};
use cenju4_bench::paper::TABLE4;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let scale = cenju4_bench::scale_arg(2.0);
    println!("Table 4: characteristics of dsm(2)+mapping runs (scale {scale})");
    println!("measured | paper where the paper reports the column\n");
    println!(
        "{:>4} {:>6} {:>12} {:>12} {:>15} {:>24} {:>15} {:>17}",
        "app",
        "nodes",
        "time (ms)",
        "Minstr/node",
        "sync %",
        "accesses P/L/R %",
        "miss ratio %",
        "remote miss %"
    );
    for app in AppKind::ALL {
        for nodes in [16u16, app.paper_nodes()] {
            let cfg = SystemConfig::builder(nodes).build()?;
            let prog = KernelProgram::build(app, Variant::Dsm2, true, &cfg, scale);
            let instr = prog.node_instructions(NodeId::new(0)) as f64 / 1e6;
            let r = runner::run_workload(app, Variant::Dsm2, true, nodes, scale)?;
            let paper = TABLE4
                .iter()
                .find(|(a, n, ..)| *a == app.name() && *n == nodes);
            let (psync, pmiss, premote) = match paper {
                Some((_, _, s, m, rm)) => (*s, *m, *rm),
                None => (f64::NAN, f64::NAN, f64::NAN),
            };
            let total: u64 = AccessClass::ALL.iter().map(|&c| r.accesses(c)).sum();
            let frac = |c| 100.0 * r.accesses(c) as f64 / total.max(1) as f64;
            println!(
                "{:>4} {:>6} {:>12.2} {:>12.2} {:>6.1} | {:>5.1} {:>7.0}/{:>4.0}/{:>4.0} {:>7} {:>5.2} | {:>5.2} {:>7.1} | {:>6.1}",
                app.name(),
                nodes,
                r.total_time().as_ns() as f64 / 1e6,
                instr,
                r.sync_fraction() * 100.0,
                psync,
                frac(AccessClass::Private),
                frac(AccessClass::SharedLocal),
                frac(AccessClass::SharedRemote),
                "",
                r.miss_ratio() * 100.0,
                pmiss,
                r.miss_fraction(AccessClass::SharedRemote) * 100.0,
                premote,
            );
        }
        println!();
    }
    println!("Expected shape: sync fraction grows with nodes; access breakdowns");
    println!("barely move, but the REMOTE share of misses jumps — mildly for");
    println!("BT/FT, dramatically for CG (9% -> 81% in the paper), which is what");
    println!("saturates CG's speedup.");
    Ok(())
}
