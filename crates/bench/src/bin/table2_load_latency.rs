//! Regenerates **Table 2**: load-access latencies per sharing class at
//! 2, 4 and 6 network stages, measured end-to-end through the protocol and
//! network simulators, with the paper's numbers alongside.
//!
//! Run with: `cargo run --release -p cenju4-bench --bin table2_load_latency`

use cenju4::prelude::*;
use cenju4_bench::paper::TABLE2;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    println!("Table 2: load access latencies (ns), measured vs paper\n");
    println!(
        "{:<26} {:>22} {:>22} {:>22}",
        "", "2 stages (16)", "4 stages (128)", "6 stages (1024)"
    );
    let rows = [
        "a) private",
        "b) shared local (clean)",
        "c) shared remote (clean)",
        "d) shared local (dirty)",
        "e) shared remote (dirty)",
    ];
    let cfgs = TABLE2
        .iter()
        .map(|&(nodes, _)| SystemConfig::builder(nodes).build())
        .collect::<Result<Vec<_>, _>>()?;
    // The three machine sizes are independent; measure them in parallel.
    let measured = sweep(&cfgs, |cfg| {
        let r = probes::load_latencies(cfg);
        [
            r.private.as_ns(),
            r.shared_local_clean.as_ns(),
            r.shared_remote_clean.as_ns(),
            r.shared_local_dirty.as_ns(),
            r.shared_remote_dirty.as_ns(),
        ]
    });
    for (i, name) in rows.iter().enumerate() {
        print!("{name:<26}");
        for (col, (_, paper)) in TABLE2.iter().enumerate() {
            print!(
                " {:>22}",
                cenju4_bench::vs(measured[col][i] as f64, paper[i] as f64)
            );
        }
        println!();
    }
    println!("\nEvery row is produced by the protocol's actual message sequence;");
    println!("only the per-component service times are calibrated (DESIGN.md).");
    Ok(())
}
