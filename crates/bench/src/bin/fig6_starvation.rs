//! Regenerates **Figure 6**: the behaviour of a nack protocol versus the
//! Cenju-4 queuing protocol when several masters target the same block.
//!
//! Figure 6(a): with nacks, a request can lose the retry race again and
//! again — latencies are unbounded in the worst case and retries pile up.
//! Figure 6(b): the queuing home services requests in arrival order with
//! zero nacks, bounding every request's waiting time.
//!
//! Run with: `cargo run --release -p cenju4-bench --bin fig6_starvation [rounds]`

use cenju4::des::stats::OnlineStats;
use cenju4::prelude::*;

struct Outcome {
    latency: OnlineStats,
    nacks: u64,
    retries: u64,
    worst_txn_retries: u32,
    max_queue: usize,
}

fn contend(cfg: &SystemConfig, rounds: u32) -> Outcome {
    let mut eng = cfg.build();
    // The Fig-6 starvation metrics come from an observer attached to the
    // engine, not from the engine's own counters.
    eng.add_observer(Box::new(StarvationProbe::default()));
    let block = Addr::new(NodeId::new(0), 0);
    let n = cfg.sys.nodes();
    for i in 0..n {
        eng.issue(eng.now(), NodeId::new(i), MemOp::Load, block);
        eng.run();
    }
    let mut latency = OnlineStats::new();
    for _ in 0..rounds {
        let t0 = eng.now();
        for i in 0..n {
            eng.issue(t0, NodeId::new(i), MemOp::Store, block);
        }
        for note in eng.run() {
            if let Some(l) = note.latency() {
                latency.push(l.as_ns() as f64);
            }
        }
    }
    let probe: &StarvationProbe = eng.observer().expect("probe was registered");
    Outcome {
        latency,
        nacks: probe.nacks(),
        retries: probe.retries(),
        worst_txn_retries: probe.worst_txn_retries(),
        max_queue: probe.max_queue_depth(),
    }
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let rounds = cenju4_bench::scale_arg(20.0) as u32;
    for nodes in [16u16, 64] {
        let queuing = SystemConfig::builder(nodes).build()?;
        let nack = SystemConfig::builder(nodes).nack_protocol().build()?;
        let q = contend(&queuing, rounds);
        let k = contend(&nack, rounds);
        println!("{nodes} nodes, {rounds} rounds of all-store contention on one block");
        println!("{:<24} {:>16} {:>16}", "", "queuing (6b)", "nack (6a)");
        println!(
            "{:<24} {:>16} {:>16}",
            "completions",
            q.latency.count(),
            k.latency.count()
        );
        println!(
            "{:<24} {:>16.1} {:>16.1}",
            "mean latency (us)",
            q.latency.mean() / 1000.0,
            k.latency.mean() / 1000.0
        );
        println!(
            "{:<24} {:>16.1} {:>16.1}",
            "p-max latency (us)",
            q.latency.max() / 1000.0,
            k.latency.max() / 1000.0
        );
        println!("{:<24} {:>16} {:>16}", "nacks", q.nacks, k.nacks);
        println!("{:<24} {:>16} {:>16}", "retries", q.retries, k.retries);
        println!(
            "{:<24} {:>16} {:>16}",
            "worst txn retries", q.worst_txn_retries, k.worst_txn_retries
        );
        println!(
            "{:<24} {:>16} {:>16}",
            "max queue depth",
            format!("{} (<= {})", q.max_queue, nodes as usize * 4),
            "-"
        );
        println!();
    }
    println!("Expected shape: the queuing protocol never nacks and its worst-case");
    println!("latency stays close to (sharers x service); the nack baseline");
    println!("retries heavily and its worst case balloons.");
    Ok(())
}
