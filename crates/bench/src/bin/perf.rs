//! Hot-path perf regression suite: three fixed deterministic scenarios
//! stress the per-event cost of the simulator (link sequencing, port
//! arbitration, multicast fan-out, and the go-back-N recovery layer) and
//! report median wall-clock time plus simulated-access throughput.
//!
//! The scenarios:
//!
//! * **protocol-txn** — a 128-node (4-stage) machine running rounds of
//!   mixed loads/stores across several home blocks; every access is a
//!   full coherence transaction, so the cost is dominated by unicast
//!   sends crossing four switch stages each.
//! * **multicast-storm** — a 64-node machine repeatedly warming a wide
//!   sharer set and then storing, so each round fans a multicast
//!   invalidation out to 32 sharers and gathers 32 acks back through the
//!   combining tree.
//! * **recovery-soak** — an 8-node machine with the recovery layer armed
//!   against a lossy plan (drops + duplicates + delays); exercises frame
//!   sequencing, retransmission timers, and receiver-side dedup. The run
//!   must complete without a `RecoveryFailed` notification.
//!
//! Each scenario is a pure function of its config, so the simulated work
//! (`ops`, final stats) is identical run to run; only wall-clock time
//! varies. We take the median of several timed runs after one warmup;
//! `--check` re-measures once before reporting a regression, because on
//! a shared (virtualized) host a steal-time burst can slow an entire
//! sample batch while a real code regression reproduces immediately.
//!
//! A fourth scenario, **scaling**, measures the conservative-parallel
//! executor: every node issues an independent burst of accesses at
//! t = 0 on a 256- and a 1024-node machine, and the same run is timed at
//! workers = 1, 2, 4, 8. The simulated results are bit-identical at
//! every worker count (guarded by `tests/parallel_determinism.rs`); the
//! figure of merit is wall-clock speedup over the one-worker run.
//!
//! Modes:
//!
//! * default — run all scenarios, print a table, and write
//!   `BENCH_hotpath.json` with the pre-optimization baseline medians
//!   (captured on the same machine before the hot path was flattened)
//!   alongside the fresh numbers and the scaling sweep.
//! * `--check <baseline.json>` — re-run and exit non-zero if any
//!   scenario's median regresses more than 25% against the checked-in
//!   JSON. Used by the `perf-smoke` CI tier. The scaling sweep is
//!   excluded (speedup depends on the host's core count).
//! * `--quick` — 3 samples instead of 5 (same scenario sizes, so the
//!   medians stay comparable to the checked-in baseline).
//! * `--workers N` — run the three hot-path scenarios on N workers
//!   (default 1; their issue-and-drain shape keeps the event queue
//!   sparse, so this mostly exercises the sequential fallback).
//! * `--scaling-smoke` — run only the 256-node scaling scenario at
//!   workers 1 and 4 and exit non-zero unless 4 workers achieve at
//!   least 1.5x. Skips (successfully) when the host exposes fewer than
//!   4 cores, where a wall-clock guard is meaningless. Used by the
//!   `scaling-smoke` CI tier.
//!
//! Run with: `cargo run --release -p cenju4-bench --bin perf`

use cenju4::prelude::*;
use std::time::Instant;

/// Pre-optimization medians (ns), captured with this same binary on the
/// map-keyed, deep-cloning hot path immediately before the flattening
/// landed. These are the "before" column of `BENCH_hotpath.json`.
const BEFORE_MEDIAN_NS: [(&str, u64); 3] = [
    ("protocol-txn", 3_327_997),
    ("multicast-storm", 2_532_884),
    ("recovery-soak", 1_221_092),
];

/// Allowed median slowdown vs the checked-in baseline before `--check`
/// fails (25%, per the perf-smoke CI contract).
const REGRESSION_LIMIT: f64 = 1.25;

/// Worker counts the scaling sweep times.
const SCALING_WORKERS: [usize; 4] = [1, 2, 4, 8];

/// Minimum wall-clock speedup 4 workers must achieve over 1 worker on
/// the 256-node scaling scenario (the `scaling-smoke` CI contract).
const SCALING_SMOKE_LIMIT: f64 = 1.5;

/// Runs rounds of mixed loads/stores on a 128-node machine; returns the
/// number of completed accesses.
fn protocol_txn(workers: usize) -> u64 {
    const NODES: u16 = 128;
    const ROUNDS: u32 = 24;
    let cfg = SystemConfig::builder(NODES)
        .parallel(ParallelConfig::with_workers(workers))
        .build()
        .expect("valid nodes");
    let mut eng = cfg.build();
    let mut completed = 0u64;
    for r in 0..ROUNDS {
        for n in 0..NODES {
            let op = if (n as u32 + r).is_multiple_of(2) {
                MemOp::Store
            } else {
                MemOp::Load
            };
            // Four blocks spread over two home nodes keeps several
            // directories and sharer sets hot at once.
            let a = Addr::new(NodeId::new(n % 2), (r % 2) + 1);
            eng.issue(eng.now(), NodeId::new(n), op, a);
            for note in eng.run() {
                if matches!(note, Notification::Completed { .. }) {
                    completed += 1;
                }
            }
        }
    }
    assert_eq!(eng.outstanding_txn_count(), 0, "accesses left outstanding");
    completed
}

/// Repeatedly warms a 32-sharer set and stores through it on a 64-node
/// machine; every store is a 32-way multicast invalidation plus a
/// combining-tree gather of the acks.
fn multicast_storm(workers: usize) -> u64 {
    const NODES: u16 = 64;
    const SHARERS: u16 = 32;
    const ROUNDS: u32 = 20;
    let cfg = SystemConfig::builder(NODES)
        .parallel(ParallelConfig::with_workers(workers))
        .build()
        .expect("valid nodes");
    let mut eng = cfg.build();
    let a = Addr::new(NodeId::new(0), 1);
    let mut completed = 0u64;
    let mut drain = |eng: &mut Engine| {
        for note in eng.run() {
            if matches!(note, Notification::Completed { .. }) {
                completed += 1;
            }
        }
    };
    for r in 0..ROUNDS {
        for s in 0..SHARERS {
            eng.issue(eng.now(), NodeId::new(2 + s), MemOp::Load, a);
            drain(&mut eng);
        }
        // A non-sharer stores: read-exclusive, invalidate all 32 sharers.
        eng.issue(
            eng.now(),
            NodeId::new(1 + (r % 2) as u16 * 40),
            MemOp::Store,
            a,
        );
        drain(&mut eng);
    }
    assert_eq!(eng.outstanding_txn_count(), 0, "accesses left outstanding");
    completed
}

/// Mixed workload on an 8-node machine with the recovery layer armed
/// against a lossy fabric; exercises retransmission, gather re-issue and
/// dedup. Panics if recovery ever gives up.
fn recovery_soak(workers: usize) -> u64 {
    const NODES: u16 = 8;
    const ROUNDS: u32 = 64;
    let plan = FaultPlan {
        seed: 0xC4_50AC,
        drop_permille: 15,
        dup_permille: 10,
        delay_permille: 10,
        max_delay_ns: 400,
        ..FaultPlan::default()
    };
    // Armed runs are ineligible for parallel windows; the workers knob
    // still flows through so the fallback is what gets measured.
    let cfg = SystemConfig::builder(NODES)
        .parallel(ParallelConfig::with_workers(workers))
        .recovery(RecoveryParams::default())
        .fault_plan(plan)
        .build()
        .expect("valid nodes");
    let mut eng = cfg.build();
    let mut completed = 0u64;
    for r in 0..ROUNDS {
        for n in 0..NODES {
            let op = if (n as u32 + r).is_multiple_of(2) {
                MemOp::Store
            } else {
                MemOp::Load
            };
            eng.issue(
                eng.now(),
                NodeId::new(n),
                op,
                Addr::new(NodeId::new(0), r % 2),
            );
            for note in eng.run() {
                match note {
                    Notification::Completed { .. } => completed += 1,
                    Notification::RecoveryFailed { at, error } => {
                        panic!("recovery failed at {at:?}: {error}")
                    }
                    _ => {}
                }
            }
        }
    }
    assert_eq!(eng.outstanding_txn_count(), 0, "accesses left outstanding");
    completed
}

/// The `scaling` scenario: every node issues an independent burst of
/// accesses at t = 0 — mostly to blocks homed on the issuing node
/// (shard-local coherence traffic the workers handle without crossing
/// shards), with every eighth access hitting the right neighbor's hot
/// block so windows still carry cross-shard fabric traffic. The event
/// queue is dense from the first event, so the run executes almost
/// entirely inside conservative-parallel windows.
fn scaling_workload(nodes: u16, workers: usize) -> u64 {
    const OPS_PER_NODE: u32 = 32;
    let cfg = SystemConfig::builder(nodes)
        .parallel(ParallelConfig::with_workers(workers))
        .build()
        .expect("valid nodes");
    let mut eng = cfg.build();
    let mut rng = SplitMix64::new(0x5CA1E + nodes as u64);
    for n in 0..nodes {
        for k in 0..OPS_PER_NODE {
            let a = if k % 8 == 7 {
                Addr::new(NodeId::new((n + 1) % nodes), 1)
            } else {
                Addr::new(NodeId::new(n), 2 + k % 4)
            };
            let op = if rng.next_below(3) == 0 {
                MemOp::Load
            } else {
                MemOp::Store
            };
            eng.issue(SimTime::ZERO, NodeId::new(n), op, a);
        }
    }
    let mut completed = 0u64;
    for note in eng.run() {
        if matches!(note, Notification::Completed { .. }) {
            completed += 1;
        }
    }
    assert_eq!(eng.outstanding_txn_count(), 0, "accesses left outstanding");
    completed
}

/// One measured scenario.
struct Measured {
    name: &'static str,
    ops: u64,
    median_ns: u64,
    throughput: f64,
}

/// Times `samples` runs of `f(workers)` (after one warmup) and returns
/// the median wall-clock ns plus the (deterministic) op count.
fn measure(name: &'static str, samples: usize, f: fn(usize) -> u64, workers: usize) -> Measured {
    let ops = f(workers); // warmup; also pins the deterministic op count
    let mut times: Vec<u64> = (0..samples)
        .map(|_| {
            let t0 = Instant::now();
            let got = f(workers);
            let dt = t0.elapsed().as_nanos() as u64;
            assert_eq!(got, ops, "{name}: op count varied between samples");
            dt
        })
        .collect();
    times.sort_unstable();
    let median_ns = times[times.len() / 2];
    Measured {
        name,
        ops,
        median_ns,
        throughput: ops as f64 / (median_ns as f64 / 1e9),
    }
}

/// One timed worker count of the scaling sweep.
struct ScalePoint {
    workers: usize,
    median_ns: u64,
    throughput: f64,
    /// Wall-clock speedup over the one-worker median of the same sweep.
    speedup: f64,
}

/// Times the scaling scenario on `nodes` nodes at each worker count in
/// [`SCALING_WORKERS`]; median of `samples` runs per point. Also asserts
/// the completed-op count never varies with the worker count.
fn measure_scaling(nodes: u16, samples: usize) -> (u64, Vec<ScalePoint>) {
    let ops = scaling_workload(nodes, 1); // warmup; pins the op count
    let mut base_ns = 0u64;
    let points = SCALING_WORKERS
        .iter()
        .map(|&w| {
            let mut times: Vec<u64> = (0..samples)
                .map(|_| {
                    let t0 = Instant::now();
                    let got = scaling_workload(nodes, w);
                    let dt = t0.elapsed().as_nanos() as u64;
                    assert_eq!(got, ops, "scaling({nodes}): ops varied at workers={w}");
                    dt
                })
                .collect();
            times.sort_unstable();
            let median_ns = times[times.len() / 2];
            if w == 1 {
                base_ns = median_ns;
            }
            ScalePoint {
                workers: w,
                median_ns,
                throughput: ops as f64 / (median_ns as f64 / 1e9),
                speedup: base_ns as f64 / median_ns as f64,
            }
        })
        .collect();
    (ops, points)
}

/// CPUs the host actually exposes to this process. Speedup numbers are
/// only meaningful up to this count; the scaling-smoke guard skips
/// entirely below 4.
fn host_cores() -> usize {
    std::thread::available_parallelism()
        .map(std::num::NonZeroUsize::get)
        .unwrap_or(1)
}

/// Runs the scaling sweep at both machine sizes, prints the table, and
/// returns the rows for the JSON export.
fn run_scaling(samples: usize) -> Vec<(u16, u64, Vec<ScalePoint>)> {
    println!(
        "\nscaling: dense t=0 burst, speedup vs one worker ({samples} samples, median, \
         host exposes {} core(s)):",
        host_cores()
    );
    println!(
        "{:>8}  {:>8}  {:>8}  {:>12}  {:>14}  {:>8}",
        "nodes", "ops", "workers", "median (ms)", "ops/sec", "speedup"
    );
    [256u16, 1024]
        .into_iter()
        .map(|nodes| {
            let (ops, points) = measure_scaling(nodes, samples);
            for p in &points {
                println!(
                    "{:>8}  {:>8}  {:>8}  {:>12.2}  {:>14.0}  {:>7.2}x",
                    nodes,
                    ops,
                    p.workers,
                    p.median_ns as f64 / 1e6,
                    p.throughput,
                    p.speedup
                );
            }
            (nodes, ops, points)
        })
        .collect()
}

/// Extracts `"median_ns": <n>` for scenario `name` from a baseline JSON
/// written by this binary. Hand-rolled scan — no serde in-repo.
fn baseline_median(json: &str, name: &str) -> Option<u64> {
    let tag = format!("\"name\": \"{name}\"");
    let at = json.find(&tag)?;
    let rest = &json[at..];
    let key = "\"median_ns\": ";
    let at = rest.find(key)? + key.len();
    let digits: String = rest[at..]
        .chars()
        .take_while(|c| c.is_ascii_digit())
        .collect();
    digits.parse().ok()
}

fn main() -> std::result::Result<(), Box<dyn std::error::Error>> {
    let mut samples = 9usize;
    let mut check: Option<String> = None;
    let mut workers = 1usize;
    let mut scaling_smoke = false;
    let mut args = std::env::args().skip(1);
    while let Some(a) = args.next() {
        match a.as_str() {
            "--quick" => samples = 3,
            "--check" => check = Some(args.next().expect("--check needs a path")),
            "--workers" => {
                workers = args
                    .next()
                    .and_then(|v| v.parse().ok())
                    .expect("--workers needs a number");
                assert!(workers > 0, "--workers must be >= 1");
            }
            "--scaling-smoke" => scaling_smoke = true,
            other => {
                panic!(
                    "unknown argument {other}; usage: perf [--quick] [--workers N] \
                     [--check <baseline.json>] [--scaling-smoke]"
                )
            }
        }
    }

    if scaling_smoke {
        return run_scaling_smoke();
    }

    type Scenario = (&'static str, fn(usize) -> u64);
    let scenarios: [Scenario; 3] = [
        ("protocol-txn", protocol_txn),
        ("multicast-storm", multicast_storm),
        ("recovery-soak", recovery_soak),
    ];
    let scenario_fn = |name: &str| -> fn(usize) -> u64 {
        scenarios
            .iter()
            .find(|&&(n, _)| n == name)
            .map(|&(_, f)| f)
            .expect("unknown scenario")
    };

    println!("hot-path perf suite ({samples} samples, median, {workers} worker(s)):");
    println!(
        "{:>16}  {:>8}  {:>12}  {:>14}",
        "scenario", "ops", "median (ms)", "ops/sec"
    );
    let results: Vec<Measured> = scenarios
        .iter()
        .map(|&(name, f)| {
            let r = measure(name, samples, f, workers);
            println!(
                "{:>16}  {:>8}  {:>12.2}  {:>14.0}",
                r.name,
                r.ops,
                r.median_ns as f64 / 1e6,
                r.throughput
            );
            r
        })
        .collect();

    if let Some(path) = check {
        // perf-smoke mode: compare against the checked-in baseline.
        let json = std::fs::read_to_string(&path)
            .unwrap_or_else(|e| panic!("cannot read baseline {path}: {e}"));
        let mut failed = false;
        for r in &results {
            let base = baseline_median(&json, r.name)
                .unwrap_or_else(|| panic!("baseline {path} has no median for {}", r.name));
            let mut median_ns = r.median_ns;
            let mut ratio = median_ns as f64 / base as f64;
            if ratio > REGRESSION_LIMIT {
                // One re-measure before failing: on shared CI hosts a
                // noisy-neighbor burst can inflate a whole sample batch,
                // and a genuine code regression reproduces immediately.
                let again = measure(r.name, samples, scenario_fn(r.name), workers);
                median_ns = median_ns.min(again.median_ns);
                ratio = median_ns as f64 / base as f64;
            }
            let verdict = if ratio > REGRESSION_LIMIT {
                "REGRESSED"
            } else {
                "ok"
            };
            println!(
                "{:>16}: {:.2}x of baseline ({} ns vs {} ns) .. {}",
                r.name, ratio, median_ns, base, verdict
            );
            failed |= ratio > REGRESSION_LIMIT;
        }
        if failed {
            eprintln!("perf-smoke: median regression beyond {REGRESSION_LIMIT}x limit");
            std::process::exit(1);
        }
        println!("perf-smoke: all scenarios within {REGRESSION_LIMIT}x of baseline");
        return Ok(());
    }

    // Full mode: run the scaling sweep, then write BENCH_hotpath.json
    // with before/after medians plus the speedup-vs-workers table.
    let scaling = run_scaling(samples.min(3));

    let mut json = String::from("{\n  \"bench\": \"hotpath\",\n");
    json.push_str(&format!("  \"samples\": {samples},\n  \"scenarios\": [\n"));
    for (i, r) in results.iter().enumerate() {
        let before = BEFORE_MEDIAN_NS
            .iter()
            .find(|&&(n, _)| n == r.name)
            .map(|&(_, ns)| ns)
            .unwrap_or(0);
        let speedup = if before > 0 {
            before as f64 / r.median_ns as f64
        } else {
            1.0
        };
        json.push_str(&format!(
            "    {{\"name\": \"{}\", \"ops\": {}, \"before_median_ns\": {}, \
             \"median_ns\": {}, \"throughput_ops_per_s\": {:.0}, \"speedup_vs_before\": {:.2}}}{}\n",
            r.name,
            r.ops,
            before,
            r.median_ns,
            r.throughput,
            speedup,
            if i + 1 == results.len() { "" } else { "," },
        ));
    }
    json.push_str(&format!(
        "  ],\n  \"host_cores\": {},\n  \"scaling\": [\n",
        host_cores()
    ));
    for (i, (nodes, ops, points)) in scaling.iter().enumerate() {
        json.push_str(&format!(
            "    {{\"nodes\": {nodes}, \"ops\": {ops}, \"points\": ["
        ));
        for (j, p) in points.iter().enumerate() {
            json.push_str(&format!(
                "{}{{\"workers\": {}, \"median_ns\": {}, \"throughput_ops_per_s\": {:.0}, \
                 \"speedup_vs_one_worker\": {:.2}}}",
                if j == 0 { "" } else { ", " },
                p.workers,
                p.median_ns,
                p.throughput,
                p.speedup,
            ));
        }
        json.push_str(&format!(
            "]}}{}\n",
            if i + 1 == scaling.len() { "" } else { "," }
        ));
    }
    json.push_str("  ]\n}\n");
    std::fs::write("BENCH_hotpath.json", &json)?;
    println!("\nwrote BENCH_hotpath.json");
    Ok(())
}

/// The `scaling-smoke` CI guard: 256-node scaling scenario at workers 1
/// and 4 only, with one re-measure before failing (same noisy-host
/// rationale as `--check`).
fn run_scaling_smoke() -> std::result::Result<(), Box<dyn std::error::Error>> {
    const NODES: u16 = 256;
    let cores = host_cores();
    if cores < 4 {
        // A wall-clock speedup guard is meaningless when the workers
        // timeslice fewer cores than the worker count; bit-identity at
        // every worker count is still enforced by the golden check that
        // runs alongside this guard in the scaling-smoke tier.
        println!("scaling-smoke: skipped — host exposes {cores} core(s), guard needs >= 4");
        return Ok(());
    }
    let smoke = |samples: usize| -> f64 {
        let ops = scaling_workload(NODES, 1);
        let time = |w: usize, samples: usize| -> u64 {
            let mut times: Vec<u64> = (0..samples)
                .map(|_| {
                    let t0 = Instant::now();
                    let got = scaling_workload(NODES, w);
                    let dt = t0.elapsed().as_nanos() as u64;
                    assert_eq!(got, ops, "scaling-smoke: ops varied at workers={w}");
                    dt
                })
                .collect();
            times.sort_unstable();
            times[times.len() / 2]
        };
        let base = time(1, samples);
        let par = time(4, samples);
        let speedup = base as f64 / par as f64;
        println!(
            "scaling-smoke: {NODES} nodes, {ops} ops — workers=1 {:.2} ms, workers=4 {:.2} ms, \
             speedup {speedup:.2}x (need >= {SCALING_SMOKE_LIMIT}x)",
            base as f64 / 1e6,
            par as f64 / 1e6,
        );
        speedup
    };
    let mut speedup = smoke(3);
    if speedup < SCALING_SMOKE_LIMIT {
        println!("scaling-smoke: below the bar, re-measuring once");
        speedup = speedup.max(smoke(3));
    }
    if speedup < SCALING_SMOKE_LIMIT {
        eprintln!("scaling-smoke: 4 workers below {SCALING_SMOKE_LIMIT}x over 1 worker");
        std::process::exit(1);
    }
    println!("scaling-smoke: ok");
    Ok(())
}
