//! Regenerates **Figure 4**: the average number of nodes represented by
//! each imprecise node-map scheme versus the actual number of sharers,
//! with sharers drawn (a) from the whole 1024-node machine and (b) from
//! one 128-node group.
//!
//! Run with:
//! `cargo run --release -p cenju4-bench --bin fig4_nodemap_precision [trials]`

use cenju4::directory::precision::{group_pool, precision_curve, whole_machine_pool, SchemeKind};
use cenju4::prelude::*;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let trials = cenju4_bench::scale_arg(200.0) as u32;
    let sys = SystemSize::new(1024)?;
    let schemes = [
        SchemeKind::CoarseVector32,
        SchemeKind::HierarchicalBitMap,
        SchemeKind::Cenju4,
    ];
    let panels: [(&str, Vec<NodeId>, Vec<u32>); 2] = [
        (
            "(a) sharers from 1024 nodes",
            whole_machine_pool(sys),
            vec![1, 2, 4, 8, 16, 32, 64, 128, 256, 512, 1024],
        ),
        (
            "(b) sharers from a 128-node group",
            group_pool(sys, 0, 128),
            vec![1, 2, 4, 8, 16, 32, 64, 128],
        ),
    ];

    for (title, pool, ks) in panels {
        println!("Figure 4{title}  [{trials} trials per point]");
        print!("{:>8}", "sharers");
        for s in schemes {
            print!("  {:>22}", s.name());
        }
        println!();
        cenju4_bench::rule(8 + 24 * schemes.len());
        // One sweep worker per scheme; curves come back in scheme order.
        let curves = sweep(&schemes, |&s| {
            precision_curve(s, sys, &pool, &ks, trials, 0xF16)
        });
        for (i, &k) in ks.iter().enumerate() {
            print!("{k:>8}");
            for c in &curves {
                print!(
                    "  {:>14.1} ({:>4.1}x)",
                    c[i].avg_represented, c[i].overcount
                );
            }
            println!();
        }
        println!();
    }
    println!("Expected shape (paper): the bit-pattern curve lies well below the");
    println!("coarse vector for small sharer counts in (a), and below both other");
    println!("schemes across panel (b) — clustered sharers stay cheap.");
    Ok(())
}
