//! Cross-protocol bakeoff: store latency and network traffic for the
//! invalidate-based MESI protocol versus the update-based Dragon
//! protocol, across every engine-backed directory format, at 16/128/1024
//! nodes (2/4/6 network stages).
//!
//! Run with: `cargo run --release -p cenju4-bench --bin fig_bakeoff`
//!
//! Three accesses tell the whole invalidate-vs-update story on a block
//! shared machine-wide:
//!
//! 1. **first store** — MESI invalidates every copy (paying the Figure-10
//!    multicast/gather once), Dragon pushes the value to every copy
//!    (same fan-out, but the copies stay warm);
//! 2. **second store** — MESI writes into its now-Modified copy for free;
//!    Dragon pays the push again on every store;
//! 3. **reread** by a former sharer — a miss (remote dirty fetch) under
//!    MESI, a local hit under Dragon.
//!
//! `--smoke` runs only the 16-node machine and asserts the signature
//! invariants of each protocol (MESI's second store and Dragon's reread
//! generate zero network traffic) instead of writing the JSON artifact;
//! the full run writes `BENCH_bakeoff.json`.

use cenju4::prelude::*;

/// One measured access: simulated latency plus the network messages it
/// caused (endpoint deliveries, the paper's own traffic unit).
#[derive(Clone, Copy, Debug)]
struct Access {
    ns: u64,
    msgs: u64,
}

/// The three-access bakeoff point for one (protocol, directory, nodes).
#[derive(Clone, Copy, Debug)]
struct Point {
    first_store: Access,
    second_store: Access,
    reread: Access,
}

fn measure(eng: &mut Engine, node: NodeId, op: MemOp, addr: Addr) -> Access {
    let before = eng.net_stats().delivered.get();
    let txn = eng.issue(eng.now(), node, op, addr);
    let done = eng.run();
    let ns = done
        .iter()
        .find_map(|n| match n {
            Notification::Completed {
                txn: t,
                issued,
                finished,
                ..
            } if *t == txn => Some(finished.since(*issued).as_ns()),
            _ => None,
        })
        .expect("bakeoff access must complete");
    Access {
        ns,
        msgs: eng.net_stats().delivered.get() - before,
    }
}

/// Warms a machine-wide sharer set on one block, then runs the
/// store/store/reread sequence from node 1 (reread from node 2).
fn bakeoff_point(coherence: ProtocolId, directory: DirectoryId, nodes: u16) -> Point {
    let cfg = SystemConfig::builder(nodes)
        .protocol(coherence)
        .directory(directory)
        .build()
        .expect("bakeoff configuration invalid");
    let mut eng = cfg.build();
    let a = Addr::new(NodeId::new(0), 0);
    for i in 1..=nodes {
        let reader = NodeId::new(i % nodes);
        measure(&mut eng, reader, MemOp::Load, a);
    }
    let first_store = measure(&mut eng, NodeId::new(1), MemOp::Store, a);
    let second_store = measure(&mut eng, NodeId::new(1), MemOp::Store, a);
    let reread = measure(&mut eng, NodeId::new(2), MemOp::Load, a);
    Point {
        first_store,
        second_store,
        reread,
    }
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let smoke = std::env::args().any(|a| a == "--smoke");
    let machines: &[u16] = if smoke { &[16] } else { &[16, 128, 1024] };

    let mut json = String::from("{\n  \"bench\": \"bakeoff\",\n  \"machines\": [\n");
    for (mi, &nodes) in machines.iter().enumerate() {
        println!("bakeoff on {nodes} nodes (machine-wide sharing):");
        println!(
            "{:>8} {:>16}  {:>10} {:>5}  {:>10} {:>5}  {:>10} {:>5}",
            "protocol",
            "directory",
            "store1(ns)",
            "msgs",
            "store2(ns)",
            "msgs",
            "reread(ns)",
            "msgs"
        );
        json.push_str(&format!(
            "    {{\"nodes\": {nodes}, \"sharers\": {nodes}, \"variants\": [\n"
        ));
        let mut first_variant = true;
        for &coherence in &ProtocolId::ALL {
            for &directory in &DirectoryId::ALL {
                let p = bakeoff_point(coherence, directory, nodes);
                println!(
                    "{:>8} {:>16}  {:>10} {:>5}  {:>10} {:>5}  {:>10} {:>5}",
                    coherence.name(),
                    directory.name(),
                    p.first_store.ns,
                    p.first_store.msgs,
                    p.second_store.ns,
                    p.second_store.msgs,
                    p.reread.ns,
                    p.reread.msgs,
                );
                if smoke {
                    // The two signature invariants of the seam: after an
                    // invalidating store the writer owns the block (free
                    // second store); after an update push every sharer is
                    // warm (free reread).
                    match coherence {
                        ProtocolId::Mesi => assert_eq!(
                            p.second_store.msgs, 0,
                            "MESI second store must be a local hit ({directory})"
                        ),
                        ProtocolId::Dragon => assert_eq!(
                            p.reread.msgs, 0,
                            "Dragon reread must be a local hit ({directory})"
                        ),
                    }
                    assert!(p.first_store.msgs > 0, "first store must cross the fabric");
                }
                json.push_str(&format!(
                    "      {}{{\"protocol\": \"{}\", \"directory\": \"{}\", \
                     \"first_store_ns\": {}, \"first_store_msgs\": {}, \
                     \"second_store_ns\": {}, \"second_store_msgs\": {}, \
                     \"reread_ns\": {}, \"reread_msgs\": {}}}\n",
                    if first_variant { "" } else { "," },
                    coherence.name(),
                    directory.name(),
                    p.first_store.ns,
                    p.first_store.msgs,
                    p.second_store.ns,
                    p.second_store.msgs,
                    p.reread.ns,
                    p.reread.msgs,
                ));
                first_variant = false;
            }
        }
        json.push_str(&format!(
            "    ]}}{}\n",
            if mi + 1 == machines.len() { "" } else { "," }
        ));
        println!();
    }
    json.push_str("  ]\n}\n");

    if smoke {
        println!("bakeoff-smoke: protocol signatures hold for every variant");
    } else {
        std::fs::write("BENCH_bakeoff.json", &json)?;
        println!("wrote BENCH_bakeoff.json");
        println!("\nExpected shape: MESI pays the invalidation fan-out once and then");
        println!("writes locally; Dragon pays the update push on every store but");
        println!("keeps every reader warm (zero-traffic rereads). Directory format");
        println!("moves the fan-out set (imprecise formats over-multicast), not the");
        println!("crossover.");
    }
    Ok(())
}
