//! Chaos-soak campaign: a node dies mid-run under every directory
//! format, and the full oracle suite (coherence, directory agreement,
//! quiescence, span leaks) must stay green on every seeded schedule.
//!
//! Each seed fixes one scenario shape (workload size, directory format)
//! and drives a batch of independent random walks of the 3-node
//! NodeDown scenario with the recovery layer armed: the fault plan
//! kills node 1 at t = 1 µs, the failure detector suspects it off the
//! retransmission stream, quarantines it, homes scrub it from their
//! directories, and masters targeting it escalate typed
//! `NodeUnavailable` errors. A single surviving violation fails the
//! whole campaign (exit 1) — this is the soak the checker's directed
//! tests sample from.
//!
//! Everything is seeded: the campaign is bit-for-bit reproducible and
//! writes its summary to `BENCH_chaos.json`.
//!
//! Run with: `cargo run --release -p cenju4-bench --bin chaos`

use cenju4_check::{run_one, CheckConfig};
use cenju4_directory::DirectoryId;
use cenju4_protocol::FaultInjection;
use std::process::ExitCode;

/// The same SplitMix64 stream the checker's random walks use, inlined so
/// the campaign's schedules are self-describing from the seed alone.
struct SplitMix64(u64);

impl SplitMix64 {
    fn next(&mut self) -> u64 {
        self.0 = self.0.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.0;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    fn next_below(&mut self, bound: u64) -> u64 {
        if bound <= 1 {
            return 0;
        }
        self.next() % bound
    }
}

/// Per-directory-format rollup.
#[derive(Default)]
struct Tally {
    walks: u64,
    steps: u64,
    max_steps: usize,
}

const SEEDS: u64 = 120;
const WALKS_PER_SEED: u64 = 3;
const MAX_STEPS: usize = 20_000;

fn main() -> ExitCode {
    let formats = DirectoryId::ALL;
    let mut tallies: Vec<Tally> = formats.iter().map(|_| Tally::default()).collect();
    let mut violations = 0u64;
    let mut total_steps = 0u64;
    let mut min_steps = usize::MAX;
    let mut max_steps = 0usize;

    println!(
        "chaos soak: {SEEDS} seeds x {WALKS_PER_SEED} walks, 3 nodes, \
         node 1 dies at 1us, recovery armed"
    );
    for seed in 0..SEEDS {
        // Each seed fixes one scenario shape; the directory format
        // rotates so every sharer-set representation takes the scrub.
        let fmt_idx = (seed as usize) % formats.len();
        let cfg = CheckConfig {
            nodes: 3,
            blocks: 1 + (seed % 2) as u16,
            ops_per_node: 2 + ((seed / 2) % 2) as u32,
            directory: formats[fmt_idx],
            fault: FaultInjection::NodeDown,
            recovery: true,
            ..CheckConfig::default()
        };
        for walk in 0..WALKS_PER_SEED {
            let mut rng = SplitMix64(seed.wrapping_mul(WALKS_PER_SEED).wrapping_add(walk));
            let out = run_one(
                &cfg,
                |arity| rng.next_below(arity as u64) as usize,
                MAX_STEPS,
            );
            if let Some(v) = &out.violation {
                violations += 1;
                println!("seed {seed} walk {walk}: VIOLATION under {cfg}");
                println!("  {v}");
            }
            tallies[fmt_idx].walks += 1;
            tallies[fmt_idx].steps += out.steps as u64;
            tallies[fmt_idx].max_steps = tallies[fmt_idx].max_steps.max(out.steps);
            total_steps += out.steps as u64;
            min_steps = min_steps.min(out.steps);
            max_steps = max_steps.max(out.steps);
        }
    }

    let total_walks = SEEDS * WALKS_PER_SEED;
    println!(
        "{:>16}  {:>6}  {:>11}  {:>9}",
        "directory", "walks", "mean steps", "max steps"
    );
    let mut json = String::from("{\n  \"bench\": \"chaos\",\n");
    json.push_str(&format!(
        "  \"seeds\": {SEEDS},\n  \"walks_per_seed\": {WALKS_PER_SEED},\n  \
         \"nodes\": 3,\n  \"violations\": {violations},\n"
    ));
    json.push_str(&format!(
        "  \"steps\": {{\"min\": {min_steps}, \"mean\": {}, \"max\": {max_steps}}},\n",
        total_steps / total_walks
    ));
    json.push_str("  \"formats\": [\n");
    for (i, (fmt, t)) in formats.iter().zip(&tallies).enumerate() {
        println!(
            "{:>16}  {:>6}  {:>11}  {:>9}",
            fmt.name(),
            t.walks,
            t.steps / t.walks.max(1),
            t.max_steps
        );
        json.push_str(&format!(
            "    {{\"directory\": \"{}\", \"walks\": {}, \"mean_steps\": {}, \
             \"max_steps\": {}}}{}\n",
            fmt.name(),
            t.walks,
            t.steps / t.walks.max(1),
            t.max_steps,
            if i + 1 == formats.len() { "" } else { "," },
        ));
    }
    json.push_str("  ]\n}\n");
    if let Err(e) = std::fs::write("BENCH_chaos.json", &json) {
        eprintln!("error: cannot write BENCH_chaos.json: {e}");
        return ExitCode::FAILURE;
    }
    println!("\nwrote BENCH_chaos.json");
    if violations != 0 {
        println!("chaos soak: {violations} of {total_walks} walks FALSIFIED an oracle");
        return ExitCode::FAILURE;
    }
    println!("chaos soak: all {total_walks} walks green (containment held)");
    ExitCode::SUCCESS
}
