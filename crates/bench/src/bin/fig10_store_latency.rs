//! Regenerates **Figure 10**: store-access latency versus the number of
//! nodes sharing the block, on 16/128/1024-node machines (2/4/6 stages),
//! with and without the network's multicast and gathering functions.
//!
//! Run with: `cargo run --release -p cenju4-bench --bin fig10_store_latency`
//!
//! `--trace-out trace.json` additionally replays the figure's golden
//! scenario with span tracing and writes a Chrome `trace_event` file;
//! `--metrics-out metrics.txt` dumps its latency histograms and counters;
//! `--workers N` runs every engine on N parallel workers (results are
//! identical — only wall-clock changes).

use cenju4::prelude::*;
use cenju4_bench::paper::{FIG10_MULTICAST_1024, FIG10_SINGLECAST_1024};
use cenju4_bench::ObsArgs;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let obs = ObsArgs::parse();
    for nodes in [16u16, 128, 1024] {
        // --workers spreads each probe engine over parallel workers; the
        // singlecast ablation is ineligible (emulated multicast) and
        // falls back to the sequential loop with identical results.
        let with_mc = SystemConfig::builder(nodes)
            .parallel(obs.parallel())
            .build()?;
        let without = SystemConfig::builder(nodes)
            .parallel(obs.parallel())
            .without_multicast()
            .build()?;
        println!(
            "store latency on {nodes} nodes ({} stages):",
            with_mc.sys.stages()
        );
        println!(
            "{:>8}  {:>16}  {:>16}  {:>6}",
            "sharers", "multicast (us)", "singlecast (us)", "ratio"
        );
        let mut ks: Vec<u16> = vec![2, 4, 8, 16];
        if nodes >= 128 {
            ks.extend([32, 64, 128]);
        }
        if nodes == 1024 {
            ks.extend([256, 512, 1024]);
        }
        // Each sharer count is an independent simulation; sweep them in
        // parallel and print in point order.
        let pairs = sweep(&ks, |&k| {
            (
                probes::store_latency(&with_mc, k),
                probes::store_latency(&without, k),
            )
        });
        for (&k, &(a, b)) in ks.iter().zip(&pairs) {
            println!(
                "{:>8}  {:>16.2}  {:>16.2}  {:>5.1}x",
                k,
                a.as_us_f64(),
                b.as_us_f64(),
                b.as_ns() as f64 / a.as_ns() as f64
            );
        }
        println!();
    }

    let big = SystemConfig::builder(1024)
        .parallel(obs.parallel())
        .build()?;
    let big_sc = SystemConfig::builder(1024)
        .parallel(obs.parallel())
        .without_multicast()
        .build()?;
    let a = probes::store_latency(&big, 1024).as_ns() as f64;
    let b = probes::store_latency(&big_sc, 1024).as_ns() as f64;
    println!("paper's 1024-sharer estimates:");
    println!(
        "  multicast+gather : {} us",
        cenju4_bench::vs(a / 1000.0, FIG10_MULTICAST_1024 as f64 / 1000.0)
    );
    println!(
        "  singlecast storm : {} us",
        cenju4_bench::vs(b / 1000.0, FIG10_SINGLECAST_1024 as f64 / 1000.0)
    );
    println!("\nExpected shape: with the hardware functions the latency grows with");
    println!("the number of *network stages*, not with the sharer count; without");
    println!("them it grows linearly with the sharers (NIC serialization).");

    if obs.active() {
        let run = cenju4_bench::traced::fig10_run(obs.workers);
        obs.write(run.collector())?;
    }
    Ok(())
}
