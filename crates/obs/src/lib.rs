//! Transaction-span observability for the Cenju-4 reproduction.
//!
//! The simulator's aggregate counters answer "how many invalidations
//! happened?"; this crate answers "what did transaction #4711 actually
//! do, hop by hop, and what is the p99 upgrade latency?". It attaches
//! through the `protocol` crate's [`Observer`] seam — pure
//! instrumentation, never influencing protocol behaviour — and is
//! therefore zero-cost when no collector is registered: a no-observer
//! run stays bit-identical to the blessed golden traces.
//!
//! * [`SpanCollector`] opens a **span** per coherence transaction (keyed
//!   by its stable [`TxnId`]), accumulates typed phase events
//!   (queued-at-home, reservation-wait, multicast-fanout,
//!   gather-combine, reply, …) with simulated timestamps, and closes it
//!   on completion into per-class latency histograms. Writebacks, which
//!   carry no transaction id, get pseudo-spans keyed by (evictor,
//!   block).
//! * [`MetricsRegistry`] holds the per-class [`Histogram`]s
//!   (p50/p90/p99/max) and per-module/per-phase counters, dumped as
//!   flat text or JSON.
//! * [`export::chrome_trace_json`] renders the spans as Chrome
//!   `trace_event` JSON — one lane per node/module — openable in
//!   `chrome://tracing` or Perfetto.
//! * [`json`] is a minimal hand-rolled JSON parser (the workspace is
//!   hermetic — no serde) used to validate exported traces in tests and
//!   the `obs-smoke` CI tier.
//!
//! # Examples
//!
//! ```
//! use cenju4_des::SimTime;
//! use cenju4_directory::NodeId;
//! use cenju4_obs::SpanCollector;
//! use cenju4_protocol::{Addr, Engine, MemOp, ProtoParams, ProtocolKind};
//! use cenju4_directory::SystemSize;
//! use cenju4_network::NetParams;
//!
//! let sys = SystemSize::new(16)?;
//! let mut eng = Engine::new(sys, ProtoParams::default(), NetParams::default(),
//!                           ProtocolKind::Queuing);
//! eng.add_observer(Box::new(SpanCollector::new(sys)));
//! eng.issue(SimTime::ZERO, NodeId::new(0), MemOp::Load, Addr::new(NodeId::new(1), 0));
//! eng.run();
//! let col: &SpanCollector = eng.observer().unwrap();
//! assert_eq!(col.completed_span_count(), 1);
//! assert_eq!(col.open_span_count(), 0); // every opened span closed
//! # Ok::<(), cenju4_directory::SystemSizeError>(())
//! ```

pub mod export;
pub mod json;
pub mod metrics;
pub mod span;

pub use cenju4_des::{Histogram, HistogramSummary};
pub use cenju4_protocol::{Observer, PhaseKind, TxnId};
pub use export::chrome_trace_json;
pub use metrics::{summary_to_json, MetricsRegistry};
pub use span::{Span, SpanClass, SpanCollector, SpanEvent};
