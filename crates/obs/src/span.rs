//! Per-transaction spans and the observer that collects them.

use crate::metrics::MetricsRegistry;
use cenju4_des::{FxHashMap, SimTime};
use cenju4_directory::{NodeId, SystemSize};
use cenju4_network::Topology;
use cenju4_protocol::observer::{ModuleKind, Observer, PhaseKind};
use cenju4_protocol::{Addr, MemOp, ProtoMsg, RecoveryError, ReqKind, TxnId};
use std::collections::VecDeque;

/// The class a closed span lands in — one latency histogram per class.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum SpanClass {
    /// Satisfied in the local L2 (no coherence traffic).
    Hit,
    /// A load miss serviced by a read-shared transaction.
    LoadMiss,
    /// A store miss serviced by a read-exclusive transaction.
    StoreMiss,
    /// A data-less ownership upgrade of a Shared copy.
    Upgrade,
    /// A write-through on an update-protocol block (Section 4.2.3).
    Update,
    /// An L2 miss refilled from the node's main-memory third-level cache.
    L3Fill,
    /// A transaction that suffered at least one nack/retry round before
    /// graduating (nack-baseline starvation signal).
    RecoveryRetry,
    /// A displaced dirty line written back to its home (pseudo-span: no
    /// transaction id, keyed by evictor and block).
    Writeback,
    /// A transaction (or in-flight writeback) given up on because its
    /// node — or the node it needed — was quarantined or timed out. The
    /// span closes at the moment the recovery layer surfaced the error,
    /// so abandonment never leaks an open span.
    Abandoned,
}

impl SpanClass {
    /// Every class, in the fixed order exporters use.
    pub const ALL: [SpanClass; 9] = [
        SpanClass::Hit,
        SpanClass::LoadMiss,
        SpanClass::StoreMiss,
        SpanClass::Upgrade,
        SpanClass::Update,
        SpanClass::L3Fill,
        SpanClass::RecoveryRetry,
        SpanClass::Writeback,
        SpanClass::Abandoned,
    ];

    /// A short stable label, used as histogram key and trace lane name.
    pub fn label(self) -> &'static str {
        match self {
            SpanClass::Hit => "hit",
            SpanClass::LoadMiss => "load-miss",
            SpanClass::StoreMiss => "store-miss",
            SpanClass::Upgrade => "upgrade",
            SpanClass::Update => "update",
            SpanClass::L3Fill => "l3-fill",
            SpanClass::RecoveryRetry => "recovery-retry",
            SpanClass::Writeback => "writeback",
            SpanClass::Abandoned => "abandoned",
        }
    }
}

/// One typed event inside a span, stamped with simulated time.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct SpanEvent {
    /// When the event fired.
    pub at: SimTime,
    /// The node it fired at.
    pub node: NodeId,
    /// The event label (a [`PhaseKind::label`] or `"retry"`).
    pub label: &'static str,
    /// Phase payload: queue depth, fan-out copies, combined acks — 0
    /// when the phase carries none.
    pub detail: u32,
}

/// The module lane a span event belongs to, for trace export.
pub(crate) fn event_module(label: &str) -> ModuleKind {
    match label {
        "queued-at-home" | "reservation-wait" | "forwarded" | "multicast-fanout"
        | "gather-combine" => ModuleKind::Home,
        "gather-contribute" => ModuleKind::Slave,
        _ => ModuleKind::Master,
    }
}

/// One coherence transaction's lifetime: open at the processor access,
/// closed at graduation, with every phase milestone in between.
#[derive(Clone, Debug)]
pub struct Span {
    /// Collector-local span id (stable within one run).
    pub id: u64,
    /// The transaction id, `None` for writeback pseudo-spans.
    pub txn: Option<TxnId>,
    /// The issuing node (evictor, for writebacks).
    pub node: NodeId,
    /// The target block.
    pub addr: Addr,
    /// The operation, when the span belongs to a processor access.
    pub op: Option<MemOp>,
    /// The request kind the master put on the wire, if any.
    pub kind: Option<ReqKind>,
    /// When the span opened.
    pub opened: SimTime,
    /// When it closed (`None` while in flight).
    pub closed: Option<SimTime>,
    /// The class assigned at close.
    pub class: Option<SpanClass>,
    /// Phase milestones, in firing order.
    pub events: Vec<SpanEvent>,
    /// Nack/retry rounds this transaction suffered.
    pub retries: u32,
}

impl Span {
    /// The span latency, once closed.
    pub fn latency_ns(&self) -> Option<u64> {
        self.closed.map(|c| c.since(self.opened).as_ns())
    }
}

/// An [`Observer`] that reconstructs per-transaction spans from the
/// protocol's callback stream and reduces them into a
/// [`MetricsRegistry`].
///
/// Attach with `Engine::add_observer`; retrieve with
/// `Engine::observer::<SpanCollector>()`. Every opened span must close
/// by quiescence — [`SpanCollector::open_span_count`] doubles as a
/// transaction-leak / starvation detector (the checker's quiescence
/// oracle asserts it is zero).
pub struct SpanCollector {
    topo: Topology,
    spans: Vec<Span>,
    /// Open processor-access spans by transaction id.
    open: FxHashMap<TxnId, usize>,
    /// Open writeback pseudo-spans by (evictor, block), FIFO per key —
    /// the fabric delivers same-link messages in order, so the first
    /// writeback sent is the first received.
    open_writebacks: FxHashMap<(NodeId, Addr), VecDeque<usize>>,
    /// The transaction whose access/retry dispatch is currently running
    /// at each node, so the txn-less `on_request_issued` callback can be
    /// attributed to its span.
    last_dispatch: FxHashMap<NodeId, TxnId>,
    metrics: MetricsRegistry,
    next_id: u64,
}

impl SpanCollector {
    /// A collector for a machine of `sys` nodes.
    pub fn new(sys: SystemSize) -> Self {
        SpanCollector {
            topo: Topology::new(sys),
            spans: Vec::new(),
            open: FxHashMap::default(),
            open_writebacks: FxHashMap::default(),
            last_dispatch: FxHashMap::default(),
            metrics: MetricsRegistry::new(),
            next_id: 0,
        }
    }

    /// Every span, in open order (closed and still-open alike).
    pub fn spans(&self) -> &[Span] {
        &self.spans
    }

    /// The accumulated histograms and counters.
    pub fn metrics(&self) -> &MetricsRegistry {
        &self.metrics
    }

    /// Spans still open — zero at quiescence, or the protocol leaked a
    /// transaction (the span-leak oracle).
    pub fn open_span_count(&self) -> usize {
        self.open.len()
            + self
                .open_writebacks
                .values()
                .map(VecDeque::len)
                .sum::<usize>()
    }

    /// Spans that opened and closed.
    pub fn completed_span_count(&self) -> usize {
        self.spans.iter().filter(|s| s.closed.is_some()).count()
    }

    /// A deterministic fingerprint of every span's class, timing, and
    /// event order — what the sweep-thread-invariance test compares.
    pub fn event_fingerprint(&self) -> String {
        let mut out = String::new();
        for s in &self.spans {
            out.push_str(&format!(
                "span txn={:?} node={} addr={} class={} opened={} closed={:?} retries={}\n",
                s.txn,
                s.node,
                s.addr,
                s.class.map_or("open", SpanClass::label),
                s.opened.as_ns(),
                s.closed.map(|c| c.as_ns()),
                s.retries,
            ));
            for e in &s.events {
                out.push_str(&format!(
                    "  {} @{} node={} detail={}\n",
                    e.label,
                    e.at.as_ns(),
                    e.node,
                    e.detail
                ));
            }
        }
        out
    }

    /// Absorbs `other` — a collector that watched a *disjoint* slice of
    /// the same run (a node shard, a sweep slot) — into this one. Spans
    /// are appended in `other`'s open order with ids and open-table
    /// indices re-based, and the metrics registries merge bucket-wise,
    /// so the union reports exactly what one collector watching both
    /// slices would have.
    ///
    /// # Panics
    ///
    /// Panics (debug) if the two collectors have an open span for the
    /// same transaction id — the slices were not disjoint.
    pub fn merge(&mut self, other: SpanCollector) {
        let base = self.spans.len();
        let id_base = self.next_id;
        for mut span in other.spans {
            span.id += id_base;
            self.spans.push(span);
        }
        self.next_id += other.next_id;
        for (txn, idx) in other.open {
            let prev = self.open.insert(txn, base + idx);
            debug_assert!(prev.is_none(), "open span collision on txn {txn}");
        }
        for ((node, addr), q) in other.open_writebacks {
            let slot = self.open_writebacks.entry((node, addr)).or_default();
            slot.extend(q.into_iter().map(|idx| base + idx));
        }
        for (node, txn) in other.last_dispatch {
            self.last_dispatch.insert(node, txn);
        }
        self.metrics.merge(&other.metrics);
    }

    fn push_span(&mut self, span: Span) -> usize {
        let idx = self.spans.len();
        self.spans.push(span);
        idx
    }

    fn close(&mut self, idx: usize, at: SimTime, class: SpanClass) {
        let span = &mut self.spans[idx];
        span.closed = Some(at);
        span.class = Some(class);
        let ns = at.since(span.opened).as_ns();
        self.metrics.record_latency(class.label(), ns);
        self.metrics.incr("span.closed");
    }

    fn classify(span: &Span, hit: bool, l3: bool) -> SpanClass {
        if span.retries > 0 {
            return SpanClass::RecoveryRetry;
        }
        if hit {
            return SpanClass::Hit;
        }
        if l3 {
            return SpanClass::L3Fill;
        }
        match (span.kind, span.op) {
            (Some(ReqKind::Ownership), _) => SpanClass::Upgrade,
            (Some(ReqKind::Update), _) => SpanClass::Update,
            (Some(ReqKind::ReadExclusive), _) => SpanClass::StoreMiss,
            (Some(ReqKind::ReadShared), Some(MemOp::Store)) => SpanClass::StoreMiss,
            (Some(ReqKind::ReadShared), _) => SpanClass::LoadMiss,
            (None, Some(MemOp::Store)) => SpanClass::StoreMiss,
            (None, _) => SpanClass::LoadMiss,
        }
    }
}

impl Observer for SpanCollector {
    fn on_access(&mut self, at: SimTime, node: NodeId, op: MemOp, addr: Addr, txn: TxnId) {
        self.last_dispatch.insert(node, txn);
        if let Some(&idx) = self.open.get(&txn) {
            // A backlogged access re-dispatching once a request slot
            // freed up: the span stays open from its first issue.
            self.spans[idx].events.push(SpanEvent {
                at,
                node,
                label: "backlog-drain",
                detail: 0,
            });
            self.metrics.incr("phase.backlog-drain");
            return;
        }
        let id = self.next_id;
        self.next_id += 1;
        let idx = self.push_span(Span {
            id,
            txn: Some(txn),
            node,
            addr,
            op: Some(op),
            kind: None,
            opened: at,
            closed: None,
            class: None,
            events: Vec::new(),
            retries: 0,
        });
        self.open.insert(txn, idx);
        self.metrics.incr("span.opened");
    }

    fn on_request_issued(&mut self, _at: SimTime, node: NodeId, kind: ReqKind, retry: bool) {
        let Some(&txn) = self.last_dispatch.get(&node) else {
            return;
        };
        if let Some(&idx) = self.open.get(&txn) {
            let span = &mut self.spans[idx];
            if span.kind.is_none() || !retry {
                span.kind = Some(kind);
            }
        }
        self.metrics.incr(&format!("module.master.request.{kind}"));
    }

    fn on_retry(&mut self, at: SimTime, node: NodeId, txn: TxnId) {
        self.last_dispatch.insert(node, txn);
        if let Some(&idx) = self.open.get(&txn) {
            let span = &mut self.spans[idx];
            span.retries += 1;
            span.events.push(SpanEvent {
                at,
                node,
                label: "retry",
                detail: span.retries,
            });
        }
        self.metrics.incr("phase.retry");
    }

    fn on_phase(&mut self, at: SimTime, node: NodeId, txn: TxnId, phase: PhaseKind) {
        let label = phase.label();
        let detail = match phase {
            PhaseKind::QueuedAtHome { depth } => depth,
            PhaseKind::MulticastFanout { copies } => copies,
            PhaseKind::GatherCombine { acks } => acks,
            _ => 0,
        };
        if let Some(&idx) = self.open.get(&txn) {
            self.spans[idx].events.push(SpanEvent {
                at,
                node,
                label,
                detail,
            });
        }
        self.metrics.incr(&format!("phase.{label}"));
        let module = match event_module(label) {
            ModuleKind::Master => "master",
            ModuleKind::Home => "home",
            ModuleKind::Slave => "slave",
        };
        self.metrics.incr(&format!("module.{module}.phases"));
    }

    fn on_send(&mut self, at: SimTime, src: NodeId, dst: NodeId, msg: &ProtoMsg) {
        self.metrics.incr("fabric.sends");
        self.metrics.add(
            "fabric.hops",
            self.topo.hop_count(src.index() as u32, dst.index() as u32) as u64,
        );
        if let ProtoMsg::WriteBack { addr, from, .. } = *msg {
            let id = self.next_id;
            self.next_id += 1;
            let idx = self.push_span(Span {
                id,
                txn: None,
                node: from,
                addr,
                op: None,
                kind: None,
                opened: at,
                closed: None,
                class: None,
                events: Vec::new(),
                retries: 0,
            });
            self.open_writebacks
                .entry((from, addr))
                .or_default()
                .push_back(idx);
            self.metrics.incr("span.opened");
        }
    }

    fn on_receive(&mut self, at: SimTime, dst: NodeId, _src: NodeId, msg: &ProtoMsg) {
        if let ProtoMsg::WriteBack { addr, from, .. } = *msg {
            debug_assert_eq!(dst, addr.home());
            if let Some(q) = self.open_writebacks.get_mut(&(from, addr)) {
                if let Some(idx) = q.pop_front() {
                    if q.is_empty() {
                        self.open_writebacks.remove(&(from, addr));
                    }
                    self.close(idx, at, SpanClass::Writeback);
                }
            }
        }
    }

    fn on_complete(
        &mut self,
        at: SimTime,
        _node: NodeId,
        txn: TxnId,
        _op: MemOp,
        _addr: Addr,
        hit: bool,
        l3: bool,
    ) {
        if let Some(idx) = self.open.remove(&txn) {
            let class = Self::classify(&self.spans[idx], hit, l3);
            self.close(idx, at, class);
        }
    }

    fn on_recovery_error(&mut self, at: SimTime, err: &RecoveryError) {
        let key = match err {
            RecoveryError::LinkRetransmitBudget { .. } => "recovery.link-retransmit-budget",
            RecoveryError::GatherReissueBudget { .. } => "recovery.gather-reissue-budget",
            RecoveryError::TransactionTimeout { .. } => "recovery.transaction-timeout",
            RecoveryError::NodeUnavailable { .. } => "recovery.node-unavailable",
        };
        self.metrics.incr(key);
        // An abandoned transaction never graduates, so its span closes
        // here instead of at on_complete.
        if let RecoveryError::TransactionTimeout { txn, .. }
        | RecoveryError::NodeUnavailable { txn, .. } = err
        {
            if let Some(idx) = self.open.remove(txn) {
                self.close(idx, at, SpanClass::Abandoned);
            }
        }
    }

    fn on_node_suspected(&mut self, _at: SimTime, _node: NodeId) {
        self.metrics.incr("recovery.node-suspects");
    }

    fn on_node_quarantined(&mut self, at: SimTime, node: NodeId) {
        self.metrics.incr("recovery.node-quarantines");
        // A writeback touching the quarantined node — evicted by it, or
        // bound for a home on it — can never be delivered: the fabric
        // dropped it during the down window or will discard it at
        // admission. Close those pseudo-spans now so quarantine does not
        // leak spans.
        let mut keys: Vec<(NodeId, Addr)> = self
            .open_writebacks
            .keys()
            .filter(|(from, addr)| *from == node || addr.home() == node)
            .copied()
            .collect();
        keys.sort_unstable();
        for key in keys {
            if let Some(q) = self.open_writebacks.remove(&key) {
                for idx in q {
                    self.close(idx, at, SpanClass::Abandoned);
                }
            }
        }
    }

    fn on_gather_scrub(&mut self, _at: SimTime, _home: NodeId, _addr: Addr) {
        self.metrics.incr("recovery.gather-scrubs");
    }

    fn on_node_rejoined(&mut self, _at: SimTime, _node: NodeId) {
        self.metrics.incr("recovery.node-rejoins");
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cenju4_network::NetParams;
    use cenju4_protocol::{Engine, ProtoParams, ProtocolKind};

    fn engine(nodes: u16) -> Engine {
        let sys = SystemSize::new(nodes).unwrap();
        let mut eng = Engine::new(
            sys,
            ProtoParams::default(),
            NetParams::default(),
            ProtocolKind::Queuing,
        );
        eng.add_observer(Box::new(SpanCollector::new(sys)));
        eng
    }

    #[test]
    fn load_miss_then_hit_classified() {
        let mut eng = engine(16);
        let a = Addr::new(NodeId::new(1), 0);
        eng.issue(SimTime::ZERO, NodeId::new(0), MemOp::Load, a);
        eng.run();
        eng.issue(eng.now(), NodeId::new(0), MemOp::Load, a);
        eng.run();
        let c: &SpanCollector = eng.observer().unwrap();
        assert_eq!(c.completed_span_count(), 2);
        assert_eq!(c.open_span_count(), 0);
        let classes: Vec<_> = c.spans().iter().map(|s| s.class.unwrap()).collect();
        assert_eq!(classes, vec![SpanClass::LoadMiss, SpanClass::Hit]);
        assert!(c.spans()[0].latency_ns().unwrap() > 0);
    }

    #[test]
    fn store_over_sharers_records_fanout_and_gather() {
        let mut eng = engine(16);
        let a = Addr::new(NodeId::new(0), 1);
        for n in 1..=4u16 {
            eng.issue(eng.now(), NodeId::new(n), MemOp::Load, a);
            eng.run();
        }
        eng.issue(eng.now(), NodeId::new(1), MemOp::Store, a);
        eng.run();
        let c: &SpanCollector = eng.observer().unwrap();
        assert_eq!(c.open_span_count(), 0);
        let store = c.spans().last().unwrap();
        assert_eq!(store.class, Some(SpanClass::Upgrade));
        let labels: Vec<_> = store.events.iter().map(|e| e.label).collect();
        assert!(labels.contains(&"multicast-fanout"), "{labels:?}");
        assert!(labels.contains(&"gather-combine"), "{labels:?}");
        assert!(labels.contains(&"reply"), "{labels:?}");
        // Event timestamps are nondecreasing within the span.
        assert!(store.events.windows(2).all(|w| w[0].at <= w[1].at));
    }

    #[test]
    fn nack_baseline_retries_classify_as_recovery_retry() {
        let sys = SystemSize::new(16).unwrap();
        let mut eng = Engine::new(
            sys,
            ProtoParams::default(),
            NetParams::default(),
            ProtocolKind::Nack,
        );
        eng.add_observer(Box::new(SpanCollector::new(sys)));
        let a = Addr::new(NodeId::new(0), 1);
        // Spread the block over several sharers so a store opens a long
        // invalidation-pending window at the home …
        for n in 1..=4u16 {
            eng.issue(eng.now(), NodeId::new(n), MemOp::Load, a);
            eng.run();
        }
        // … then race two stores into that window: the loser is nacked
        // and must retry.
        let t = eng.now();
        eng.issue(t, NodeId::new(5), MemOp::Store, a);
        eng.issue(t, NodeId::new(6), MemOp::Store, a);
        eng.run();
        let c: &SpanCollector = eng.observer().unwrap();
        assert_eq!(c.open_span_count(), 0);
        assert!(c
            .spans()
            .iter()
            .any(|s| s.class == Some(SpanClass::RecoveryRetry) && s.retries > 0));
    }

    #[test]
    fn merge_unions_spans_and_metrics() {
        let run = |seed_node: u16| {
            let mut eng = engine(16);
            let a = Addr::new(NodeId::new(seed_node), 0);
            eng.issue(SimTime::ZERO, NodeId::new(0), MemOp::Load, a);
            eng.run();
            eng.issue(eng.now(), NodeId::new(0), MemOp::Load, a);
            eng.run();
            eng
        };
        let a = run(1);
        let b = run(2);
        let (ca, cb) = (
            a.observer::<SpanCollector>().unwrap(),
            b.observer::<SpanCollector>().unwrap(),
        );
        let total = ca.spans().len() + cb.spans().len();
        let sends = ca.metrics().counter("fabric.sends") + cb.metrics().counter("fabric.sends");
        let lat_count = ca.metrics().latency_summary("load-miss").unwrap().count
            + cb.metrics().latency_summary("load-miss").unwrap().count;

        let mut merged = SpanCollector::new(SystemSize::new(16).unwrap());
        merged.merge(clone_collector(ca));
        merged.merge(clone_collector(cb));
        assert_eq!(merged.spans().len(), total);
        assert_eq!(merged.open_span_count(), 0);
        assert_eq!(merged.metrics().counter("fabric.sends"), sends);
        assert_eq!(
            merged.metrics().latency_summary("load-miss").unwrap().count,
            lat_count
        );
        // Ids stay unique across the union.
        let mut ids: Vec<u64> = merged.spans().iter().map(|s| s.id).collect();
        ids.sort_unstable();
        ids.dedup();
        assert_eq!(ids.len(), total);
    }

    /// Rebuilds an owned collector from a borrowed one (the engine owns
    /// its observers; merging consumes).
    fn clone_collector(c: &SpanCollector) -> SpanCollector {
        let mut out = SpanCollector::new(SystemSize::new(16).unwrap());
        out.spans = c.spans.clone();
        out.open = c.open.clone();
        out.open_writebacks = c.open_writebacks.clone();
        out.last_dispatch = c.last_dispatch.clone();
        out.metrics = c.metrics.clone();
        out.next_id = c.next_id;
        out
    }

    #[test]
    fn writeback_pseudo_spans_close() {
        let sys = SystemSize::new(16).unwrap();
        // A one-set, 4-way cache: the fifth distinct dirty block evicts a
        // Modified victim, which is written back to its home.
        let params = ProtoParams {
            cache_bytes: 4 * 128,
            cache_assoc: 4,
            ..ProtoParams::default()
        };
        let mut eng = Engine::new(sys, params, NetParams::default(), ProtocolKind::Queuing);
        eng.add_observer(Box::new(SpanCollector::new(sys)));
        for b in 0..8u32 {
            eng.issue(
                eng.now(),
                NodeId::new(0),
                MemOp::Store,
                Addr::new(NodeId::new(1), b),
            );
            eng.run();
        }
        let c: &SpanCollector = eng.observer().unwrap();
        assert_eq!(c.open_span_count(), 0, "all writeback spans must close");
        let wb = c
            .spans()
            .iter()
            .filter(|s| s.class == Some(SpanClass::Writeback))
            .count();
        assert!(wb > 0, "expected at least one writeback span");
        assert_eq!(wb as u64, eng.stats().writebacks.get());
    }
}
