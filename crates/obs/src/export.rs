//! Chrome `trace_event` export.
//!
//! Renders a [`SpanCollector`]'s spans as the JSON Object Format the
//! Chrome tracing UI and Perfetto understand: one *process* per node,
//! one *thread* lane per protocol module (master/home/slave), a `ph:"X"`
//! complete event per closed span, and `ph:"i"` instant events for the
//! phase milestones inside it. Timestamps are simulated nanoseconds
//! rendered as fractional microseconds (`ts`/`dur` are µs in the trace
//! format), so nothing is rounded away.

use crate::span::{event_module, SpanClass, SpanCollector};
use cenju4_protocol::ModuleKind;

/// The `tid` lane a module renders on within its node's process.
fn lane(module: ModuleKind) -> u32 {
    match module {
        ModuleKind::Master => 0,
        ModuleKind::Home => 1,
        ModuleKind::Slave => 2,
    }
}

/// Nanoseconds as a µs decimal string with no float rounding:
/// `2620 → "2.620"`.
fn us(ns: u64) -> String {
    format!("{}.{:03}", ns / 1_000, ns % 1_000)
}

/// Escapes a string for embedding in a JSON literal.
fn esc(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\t' => out.push_str("\\t"),
            '\r' => out.push_str("\\r"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

/// Renders the collector's spans as a complete Chrome `trace_event`
/// JSON document (`{"traceEvents":[…]}`). Open it in `chrome://tracing`
/// or <https://ui.perfetto.dev>.
///
/// Every closed span becomes a `ph:"X"` complete event on the lane of
/// the module that owned it (accesses on the issuing node's master lane,
/// writebacks on the home's home lane); every phase event inside it
/// becomes a `ph:"i"` instant on the lane of the module that fired it.
/// Metadata events name the processes (`node N`) and lanes so the UI is
/// readable without a legend.
///
/// # Examples
///
/// ```
/// use cenju4_des::SimTime;
/// use cenju4_directory::{NodeId, SystemSize};
/// use cenju4_network::NetParams;
/// use cenju4_obs::{chrome_trace_json, json, SpanCollector};
/// use cenju4_protocol::{Addr, Engine, MemOp, ProtoParams, ProtocolKind};
///
/// let sys = SystemSize::new(16)?;
/// let mut eng = Engine::new(sys, ProtoParams::default(), NetParams::default(),
///                           ProtocolKind::Queuing);
/// eng.add_observer(Box::new(SpanCollector::new(sys)));
/// eng.issue(SimTime::ZERO, NodeId::new(0), MemOp::Load, Addr::new(NodeId::new(1), 0));
/// eng.run();
/// let doc = chrome_trace_json(eng.observer::<SpanCollector>().unwrap());
/// let shape = json::validate_chrome_trace(&doc)?;
/// assert_eq!(shape.complete_spans, 1);
/// # Ok::<(), Box<dyn std::error::Error>>(())
/// ```
pub fn chrome_trace_json(col: &SpanCollector) -> String {
    let mut events: Vec<String> = Vec::new();

    // Name each process/lane that actually appears, in first-use order.
    let mut named: Vec<(u16, u32)> = Vec::new();
    let mut name_lane = |events: &mut Vec<String>, node: u16, tid: u32| {
        if named.contains(&(node, tid)) {
            return;
        }
        if !named.iter().any(|&(n, _)| n == node) {
            events.push(format!(
                r#"{{"ph":"M","name":"process_name","pid":{node},"tid":0,"args":{{"name":"node {node}"}}}}"#
            ));
        }
        named.push((node, tid));
        let lane_name = match tid {
            0 => "master",
            1 => "home",
            _ => "slave",
        };
        events.push(format!(
            r#"{{"ph":"M","name":"thread_name","pid":{node},"tid":{tid},"args":{{"name":"{lane_name}"}}}}"#
        ));
    };

    for span in col.spans() {
        let Some(closed) = span.closed else {
            continue; // leaked spans are the oracle's business, not the UI's
        };
        let class = span.class.unwrap_or(SpanClass::Hit);
        let (pid, tid) = match class {
            SpanClass::Writeback => (span.addr.home().index(), lane(ModuleKind::Home)),
            _ => (span.node.index(), lane(ModuleKind::Master)),
        };
        name_lane(&mut events, pid, tid);
        let ts = span.opened.as_ns();
        let dur = closed.as_ns() - ts;
        let txn = span
            .txn
            .map_or_else(|| "null".to_owned(), |t| t.to_string());
        events.push(format!(
            r#"{{"ph":"X","name":"{}","cat":"txn","pid":{pid},"tid":{tid},"ts":{},"dur":{},"args":{{"txn":{txn},"addr":"{}","retries":{}}}}}"#,
            esc(class.label()),
            us(ts),
            us(dur),
            esc(&span.addr.to_string()),
            span.retries,
        ));
        for ev in &span.events {
            let epid = ev.node.index();
            let etid = lane(event_module(ev.label));
            name_lane(&mut events, epid, etid);
            events.push(format!(
                r#"{{"ph":"i","name":"{}","cat":"phase","pid":{epid},"tid":{etid},"ts":{},"s":"t","args":{{"txn":{txn},"detail":{}}}}}"#,
                esc(ev.label),
                us(ev.at.as_ns()),
                ev.detail,
            ));
        }
    }

    let mut out = String::from("{\"traceEvents\":[\n");
    for (i, ev) in events.iter().enumerate() {
        if i > 0 {
            out.push_str(",\n");
        }
        out.push_str(ev);
    }
    out.push_str("\n]}\n");
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::json;
    use cenju4_des::SimTime;
    use cenju4_directory::{NodeId, SystemSize};
    use cenju4_network::NetParams;
    use cenju4_protocol::{Addr, Engine, MemOp, ProtoParams, ProtocolKind};

    fn traced_engine() -> Engine {
        let sys = SystemSize::new(16).unwrap();
        let mut eng = Engine::new(
            sys,
            ProtoParams::default(),
            NetParams::default(),
            ProtocolKind::Queuing,
        );
        eng.add_observer(Box::new(SpanCollector::new(sys)));
        eng
    }

    #[test]
    fn us_formatting_is_exact() {
        assert_eq!(us(0), "0.000");
        assert_eq!(us(2_620), "2.620");
        assert_eq!(us(1_000_001), "1000.001");
    }

    #[test]
    fn one_complete_span_per_transaction() {
        let mut eng = traced_engine();
        let a = Addr::new(NodeId::new(1), 0);
        eng.issue(SimTime::ZERO, NodeId::new(0), MemOp::Load, a);
        eng.run();
        eng.issue(eng.now(), NodeId::new(2), MemOp::Store, a);
        eng.run();
        let doc = chrome_trace_json(eng.observer::<SpanCollector>().unwrap());
        let shape = json::validate_chrome_trace(&doc).unwrap();
        assert_eq!(shape.complete_spans, 2);
        assert!(shape.instants > 0, "store over a sharer must emit phases");
        // Lanes are named.
        let parsed = json::parse(&doc).unwrap();
        let events = parsed.get("traceEvents").unwrap().as_arr().unwrap();
        assert!(events.iter().any(|e| {
            e.get("ph").unwrap().as_str() == Some("M")
                && e.get("name").unwrap().as_str() == Some("process_name")
        }));
    }

    #[test]
    fn repeated_export_is_identical() {
        let mut eng = traced_engine();
        eng.issue(
            SimTime::ZERO,
            NodeId::new(3),
            MemOp::Store,
            Addr::new(NodeId::new(0), 7),
        );
        eng.run();
        let col = eng.observer::<SpanCollector>().unwrap();
        assert_eq!(chrome_trace_json(col), chrome_trace_json(col));
    }
}
