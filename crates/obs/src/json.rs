//! A minimal JSON value type and recursive-descent parser.
//!
//! The workspace is hermetic (no serde), but the trace exporter writes
//! JSON and the tests and the `obs-smoke` CI tier must be able to read
//! it back and check its shape. This module is that reader: full JSON
//! grammar, no extensions, string escapes limited to what the exporter
//! emits plus the standard set.

/// A parsed JSON value.
#[derive(Clone, Debug, PartialEq)]
pub enum Json {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// Any number (stored as `f64`, which covers every value the
    /// exporter writes).
    Num(f64),
    /// A string.
    Str(String),
    /// An array.
    Arr(Vec<Json>),
    /// An object, in source order.
    Obj(Vec<(String, Json)>),
}

impl Json {
    /// Member lookup on an object, `None` otherwise.
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(members) => members.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The value as an array.
    pub fn as_arr(&self) -> Option<&[Json]> {
        match self {
            Json::Arr(items) => Some(items),
            _ => None,
        }
    }

    /// The value as a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The value as a number.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Json::Num(n) => Some(*n),
            _ => None,
        }
    }

    /// The value as an exact unsigned integer.
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            Json::Num(n) if *n >= 0.0 && n.fract() == 0.0 && *n <= u64::MAX as f64 => {
                Some(*n as u64)
            }
            _ => None,
        }
    }
}

/// Parses a complete JSON document.
///
/// # Examples
///
/// ```
/// use cenju4_obs::json::parse;
///
/// let v = parse(r#"{"traceEvents":[{"ph":"X","ts":1.5}]}"#).unwrap();
/// let ev = &v.get("traceEvents").unwrap().as_arr().unwrap()[0];
/// assert_eq!(ev.get("ph").unwrap().as_str(), Some("X"));
/// assert_eq!(ev.get("ts").unwrap().as_f64(), Some(1.5));
/// ```
///
/// # Errors
///
/// A human-readable message with a byte offset on malformed input or
/// trailing garbage.
pub fn parse(src: &str) -> Result<Json, String> {
    let mut p = Parser {
        bytes: src.as_bytes(),
        pos: 0,
    };
    p.skip_ws();
    let v = p.value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(format!("trailing garbage at byte {}", p.pos));
    }
    Ok(v)
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl Parser<'_> {
    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn bump(&mut self) -> Option<u8> {
        let b = self.peek()?;
        self.pos += 1;
        Some(b)
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn expect(&mut self, b: u8) -> Result<(), String> {
        if self.bump() == Some(b) {
            Ok(())
        } else {
            Err(format!(
                "expected '{}' at byte {}",
                b as char,
                self.pos.saturating_sub(1)
            ))
        }
    }

    fn value(&mut self) -> Result<Json, String> {
        match self.peek() {
            Some(b'{') => self.object(),
            Some(b'[') => self.array(),
            Some(b'"') => Ok(Json::Str(self.string()?)),
            Some(b't') => self.literal("true", Json::Bool(true)),
            Some(b'f') => self.literal("false", Json::Bool(false)),
            Some(b'n') => self.literal("null", Json::Null),
            Some(c) if c == b'-' || c.is_ascii_digit() => self.number(),
            Some(c) => Err(format!("unexpected '{}' at byte {}", c as char, self.pos)),
            None => Err("unexpected end of input".into()),
        }
    }

    fn literal(&mut self, lit: &str, v: Json) -> Result<Json, String> {
        if self.bytes[self.pos..].starts_with(lit.as_bytes()) {
            self.pos += lit.len();
            Ok(v)
        } else {
            Err(format!("bad literal at byte {}", self.pos))
        }
    }

    fn object(&mut self) -> Result<Json, String> {
        self.expect(b'{')?;
        let mut members = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Json::Obj(members));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let val = self.value()?;
            members.push((key, val));
            self.skip_ws();
            match self.bump() {
                Some(b',') => continue,
                Some(b'}') => return Ok(Json::Obj(members)),
                _ => return Err(format!("expected ',' or '}}' at byte {}", self.pos)),
            }
        }
    }

    fn array(&mut self) -> Result<Json, String> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Json::Arr(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.bump() {
                Some(b',') => continue,
                Some(b']') => return Ok(Json::Arr(items)),
                _ => return Err(format!("expected ',' or ']' at byte {}", self.pos)),
            }
        }
    }

    fn string(&mut self) -> Result<String, String> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.bump() {
                Some(b'"') => return Ok(out),
                Some(b'\\') => match self.bump() {
                    Some(b'"') => out.push('"'),
                    Some(b'\\') => out.push('\\'),
                    Some(b'/') => out.push('/'),
                    Some(b'n') => out.push('\n'),
                    Some(b't') => out.push('\t'),
                    Some(b'r') => out.push('\r'),
                    Some(b'b') => out.push('\u{8}'),
                    Some(b'f') => out.push('\u{c}'),
                    Some(b'u') => {
                        if self.pos + 4 > self.bytes.len() {
                            return Err("truncated \\u escape".into());
                        }
                        let hex = std::str::from_utf8(&self.bytes[self.pos..self.pos + 4])
                            .map_err(|_| "non-utf8 \\u escape".to_string())?;
                        let code = u32::from_str_radix(hex, 16)
                            .map_err(|_| format!("bad \\u escape at byte {}", self.pos))?;
                        self.pos += 4;
                        // Surrogate pairs are not emitted by the exporter;
                        // reject rather than mis-decode.
                        out.push(
                            char::from_u32(code)
                                .ok_or_else(|| "surrogate \\u escape".to_string())?,
                        );
                    }
                    _ => return Err(format!("bad escape at byte {}", self.pos)),
                },
                Some(c) if c < 0x20 => {
                    return Err(format!("raw control char at byte {}", self.pos - 1))
                }
                Some(c) => {
                    // Re-assemble multi-byte UTF-8 sequences.
                    if c < 0x80 {
                        out.push(c as char);
                    } else {
                        let start = self.pos - 1;
                        let len = match c {
                            0xC0..=0xDF => 2,
                            0xE0..=0xEF => 3,
                            _ => 4,
                        };
                        if start + len > self.bytes.len() {
                            return Err("truncated utf-8 sequence".into());
                        }
                        let s = std::str::from_utf8(&self.bytes[start..start + len])
                            .map_err(|_| format!("bad utf-8 at byte {start}"))?;
                        out.push_str(s);
                        self.pos = start + len;
                    }
                }
                None => return Err("unterminated string".into()),
            }
        }
    }

    fn number(&mut self) -> Result<Json, String> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
            self.pos += 1;
        }
        if self.peek() == Some(b'.') {
            self.pos += 1;
            while matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
                self.pos += 1;
            }
        }
        if matches!(self.peek(), Some(b'e' | b'E')) {
            self.pos += 1;
            if matches!(self.peek(), Some(b'+' | b'-')) {
                self.pos += 1;
            }
            while matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
                self.pos += 1;
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos]).unwrap();
        text.parse::<f64>()
            .map(Json::Num)
            .map_err(|_| format!("bad number at byte {start}"))
    }
}

/// Shape summary returned by [`validate_chrome_trace`].
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct TraceShape {
    /// Total events of any phase.
    pub events: usize,
    /// `ph:"X"` complete spans.
    pub complete_spans: usize,
    /// `ph:"i"` instant events.
    pub instants: usize,
}

/// Checks that `src` is a Chrome `trace_event` document: a top-level
/// object with a `traceEvents` array whose members all carry a string
/// `ph`, and whose `"X"` events carry `name`/`pid`/`tid`/`ts`/`dur`.
///
/// # Errors
///
/// The first shape violation found, as a human-readable message.
pub fn validate_chrome_trace(src: &str) -> Result<TraceShape, String> {
    let doc = parse(src)?;
    let events = doc
        .get("traceEvents")
        .ok_or("missing traceEvents")?
        .as_arr()
        .ok_or("traceEvents is not an array")?;
    let mut shape = TraceShape {
        events: events.len(),
        complete_spans: 0,
        instants: 0,
    };
    for (i, ev) in events.iter().enumerate() {
        let ph = ev
            .get("ph")
            .and_then(Json::as_str)
            .ok_or_else(|| format!("event {i}: missing string ph"))?;
        match ph {
            "X" => {
                for field in ["name", "pid", "tid", "ts", "dur"] {
                    if ev.get(field).is_none() {
                        return Err(format!("event {i}: X event missing {field}"));
                    }
                }
                if ev.get("ts").and_then(Json::as_f64).is_none()
                    || ev.get("dur").and_then(Json::as_f64).is_none()
                {
                    return Err(format!("event {i}: non-numeric ts/dur"));
                }
                shape.complete_spans += 1;
            }
            "i" => shape.instants += 1,
            _ => {}
        }
    }
    Ok(shape)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_nested_document() {
        let v = parse(r#"{"a":[1,2.5,-3e2],"b":{"c":"x\ny"},"d":null,"e":true}"#).unwrap();
        assert_eq!(v.get("a").unwrap().as_arr().unwrap().len(), 3);
        assert_eq!(
            v.get("a").unwrap().as_arr().unwrap()[2].as_f64(),
            Some(-300.0)
        );
        assert_eq!(v.get("b").unwrap().get("c").unwrap().as_str(), Some("x\ny"));
        assert_eq!(v.get("d"), Some(&Json::Null));
        assert_eq!(v.get("e"), Some(&Json::Bool(true)));
    }

    #[test]
    fn rejects_malformed_input() {
        assert!(parse("{").is_err());
        assert!(parse("[1,]").is_err());
        assert!(parse(r#"{"a":1} extra"#).is_err());
        assert!(parse(r#""unterminated"#).is_err());
        assert!(parse("01x").is_err());
    }

    #[test]
    fn unicode_escapes_and_utf8_round_trip() {
        let v = parse(r#""café — naïve""#).unwrap();
        assert_eq!(v.as_str(), Some("café — naïve"));
    }

    #[test]
    fn validates_trace_shape() {
        let good = r#"{"traceEvents":[
            {"ph":"M","name":"process_name","pid":0,"args":{"name":"node0"}},
            {"ph":"X","name":"load-miss","pid":0,"tid":0,"ts":0.1,"dur":2.62},
            {"ph":"i","name":"reply","pid":0,"tid":0,"ts":2.0,"s":"t"}
        ]}"#;
        let shape = validate_chrome_trace(good).unwrap();
        assert_eq!(shape.events, 3);
        assert_eq!(shape.complete_spans, 1);
        assert_eq!(shape.instants, 1);

        let bad = r#"{"traceEvents":[{"ph":"X","name":"x","pid":0,"tid":0,"ts":0.1}]}"#;
        assert!(validate_chrome_trace(bad).unwrap_err().contains("dur"));
        assert!(validate_chrome_trace(r#"{"events":[]}"#).is_err());
    }
}
