//! A registry of named latency histograms and counters.
//!
//! `BTreeMap`-backed so every dump iterates in sorted key order — the
//! text and JSON exports are deterministic across runs and sweep thread
//! counts, which the determinism tests rely on.

use cenju4_des::{Histogram, HistogramSummary};
use std::collections::BTreeMap;

/// Bucket width of the per-class latency histograms. Pinned store
/// latencies on the paper's configurations run 2.6–3.5 µs, so 250 ns
/// buckets resolve p50/p90/p99 without a huge table.
pub const LATENCY_BUCKET_NS: u64 = 250;

/// Bucket count: covers 0–32 µs before the overflow bucket, comfortably
/// past the worst queued-under-contention latencies the checker explores.
pub const LATENCY_BUCKETS: usize = 128;

/// Named per-class latency [`Histogram`]s plus flat `u64` counters,
/// accumulated by a [`crate::SpanCollector`] and dumped as text or JSON.
///
/// # Examples
///
/// ```
/// use cenju4_obs::MetricsRegistry;
///
/// let mut m = MetricsRegistry::new();
/// m.incr("fabric.sends");
/// m.add("fabric.hops", 4);
/// m.record_latency("load-miss", 2_620);
/// assert_eq!(m.counter("fabric.hops"), 4);
/// assert_eq!(m.latency_summary("load-miss").unwrap().count, 1);
/// assert!(m.to_text().contains("load-miss"));
/// ```
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct MetricsRegistry {
    histograms: BTreeMap<String, Histogram>,
    counters: BTreeMap<String, u64>,
}

impl MetricsRegistry {
    /// An empty registry.
    pub fn new() -> Self {
        MetricsRegistry::default()
    }

    /// Adds one latency sample to the named class histogram.
    pub fn record_latency(&mut self, class: &str, ns: u64) {
        self.histograms
            .entry(class.to_owned())
            .or_insert_with(|| Histogram::new(LATENCY_BUCKET_NS, LATENCY_BUCKETS))
            .record(ns);
    }

    /// Increments a counter by one.
    pub fn incr(&mut self, key: &str) {
        self.add(key, 1);
    }

    /// Adds `n` to a counter.
    pub fn add(&mut self, key: &str, n: u64) {
        *self.counters.entry(key.to_owned()).or_default() += n;
    }

    /// The current value of a counter (0 if never touched).
    pub fn counter(&self, key: &str) -> u64 {
        self.counters.get(key).copied().unwrap_or(0)
    }

    /// The latency histogram for a class, if any sample was recorded.
    pub fn latency(&self, class: &str) -> Option<&Histogram> {
        self.histograms.get(class)
    }

    /// The count/p50/p90/p99/max summary for a class.
    pub fn latency_summary(&self, class: &str) -> Option<HistogramSummary> {
        self.histograms.get(class).map(Histogram::summary)
    }

    /// All counters, in sorted key order.
    pub fn counters(&self) -> impl Iterator<Item = (&str, u64)> {
        self.counters.iter().map(|(k, v)| (k.as_str(), *v))
    }

    /// All histograms, in sorted key order.
    pub fn histograms(&self) -> impl Iterator<Item = (&str, &Histogram)> {
        self.histograms.iter().map(|(k, v)| (k.as_str(), v))
    }

    /// A flat, sorted, line-oriented text dump:
    /// `latency.<class> count=… p50=… p90=… p99=… max=…` then
    /// `counter.<key> = …`.
    pub fn to_text(&self) -> String {
        let mut out = String::new();
        for (class, h) in &self.histograms {
            let s = h.summary();
            out.push_str(&format!(
                "latency.{class} count={} p50={} p90={} p99={} max={}\n",
                s.count, s.p50, s.p90, s.p99, s.max
            ));
        }
        for (key, v) in &self.counters {
            out.push_str(&format!("counter.{key} = {v}\n"));
        }
        out
    }

    /// The same dump as a JSON object:
    /// `{"latency":{"<class>":{"count":…,…}},"counters":{"<key>":…}}`.
    pub fn to_json(&self) -> String {
        let mut out = String::from("{\"latency\":{");
        for (i, (class, h)) in self.histograms.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str(&format!("\"{class}\":{}", summary_to_json(&h.summary())));
        }
        out.push_str("},\"counters\":{");
        for (i, (key, v)) in self.counters.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str(&format!("\"{key}\":{v}"));
        }
        out.push_str("}}");
        out
    }

    /// Folds `other` into this registry: counters add, histograms merge
    /// bucket-wise. Merging is commutative on the stored aggregates, so
    /// per-shard registries from a partitioned run (one per worker or
    /// sweep slot) collapse into exactly the registry a single-shard run
    /// would have produced.
    ///
    /// # Panics
    ///
    /// Panics if both registries hold a histogram for the same class
    /// with different bucket layouts.
    ///
    /// # Examples
    ///
    /// ```
    /// use cenju4_obs::MetricsRegistry;
    ///
    /// let mut a = MetricsRegistry::new();
    /// a.incr("fabric.sends");
    /// a.record_latency("load-miss", 2_620);
    /// let mut b = MetricsRegistry::new();
    /// b.add("fabric.sends", 2);
    /// b.record_latency("load-miss", 3_135);
    /// a.merge(&b);
    /// assert_eq!(a.counter("fabric.sends"), 3);
    /// assert_eq!(a.latency_summary("load-miss").unwrap().count, 2);
    /// ```
    pub fn merge(&mut self, other: &MetricsRegistry) {
        for (class, h) in &other.histograms {
            match self.histograms.get_mut(class) {
                Some(mine) => mine.merge(h),
                None => {
                    self.histograms.insert(class.clone(), h.clone());
                }
            }
        }
        for (key, v) in &other.counters {
            *self.counters.entry(key.clone()).or_default() += v;
        }
    }

    /// Raw bucket counts of every histogram, concatenated in key order —
    /// the exact-equality payload of the sweep-thread-invariance test.
    pub fn bucket_fingerprint(&self) -> Vec<(String, Vec<u64>)> {
        self.histograms
            .iter()
            .map(|(k, h)| (k.clone(), h.buckets().to_vec()))
            .collect()
    }
}

/// Serializes one [`HistogramSummary`] as the canonical JSON object every
/// exporter embeds — [`MetricsRegistry::to_json`] here, and the
/// `cenju4-serve` simulate responses. Field order is fixed so equal
/// summaries serialize byte-identically.
pub fn summary_to_json(s: &HistogramSummary) -> String {
    format!(
        "{{\"count\":{},\"p50\":{},\"p90\":{},\"p99\":{},\"max\":{}}}",
        s.count, s.p50, s.p90, s.p99, s.max
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_accumulate_and_default_to_zero() {
        let mut m = MetricsRegistry::new();
        assert_eq!(m.counter("never"), 0);
        m.incr("x");
        m.add("x", 9);
        assert_eq!(m.counter("x"), 10);
    }

    #[test]
    fn text_and_json_dumps_are_sorted_and_parse() {
        let mut m = MetricsRegistry::new();
        m.record_latency("store-miss", 3_135);
        m.record_latency("load-miss", 2_620);
        m.incr("b");
        m.incr("a");
        let text = m.to_text();
        let load = text.find("latency.load-miss").unwrap();
        let store = text.find("latency.store-miss").unwrap();
        assert!(load < store, "classes must dump in sorted order");
        let a = text.find("counter.a").unwrap();
        let b = text.find("counter.b").unwrap();
        assert!(a < b);

        let json = crate::json::parse(&m.to_json()).unwrap();
        let lat = json.get("latency").unwrap();
        let lm = lat.get("load-miss").unwrap();
        assert_eq!(lm.get("count").unwrap().as_u64(), Some(1));
        assert_eq!(lm.get("max").unwrap().as_u64(), Some(2_620));
        assert_eq!(
            json.get("counters").unwrap().get("a").unwrap().as_u64(),
            Some(1)
        );
    }

    #[test]
    fn latency_summary_reports_quantiles() {
        let mut m = MetricsRegistry::new();
        for ns in [1_000u64, 2_000, 3_000, 100_000] {
            m.record_latency("upgrade", ns);
        }
        let s = m.latency_summary("upgrade").unwrap();
        assert_eq!(s.count, 4);
        assert_eq!(s.max, 100_000);
        assert!(s.p50 <= s.p90 && s.p90 <= s.p99);
    }
}
