//! `cenju4-serve`: the simulator as a long-running capacity-planning
//! service.
//!
//! Every what-if question about a Cenju-4 configuration used to cost a
//! full process launch. This crate serves the simulator instead: a
//! hermetic request loop (in-repo thread pools + std channels — the
//! workspace has no crates.io dependencies) accepting concurrent
//! queries over a line-delimited JSON protocol on stdin/stdout or a TCP
//! listener. A query is a [`SystemConfig`](cenju4_sim::SystemConfig)
//! plus a workload spec; the response is the predicted performance —
//! total time, speedup over the sequential baseline, per-class latency
//! quantiles in the `crates/obs` summary shape.
//!
//! Three properties make the service fast and testable:
//!
//! * **Dedup + caching** ([`cache`]): queries are keyed by the canonical
//!   [`SystemConfig::fingerprint`](cenju4_sim::SystemConfig::fingerprint)
//!   plus workload knobs. Identical in-flight queries coalesce onto one
//!   simulation; completed results are cached. Exactly one simulation
//!   runs per distinct key at any concurrency, and a cached response is
//!   byte-identical to a fresh one (responses carry no cache metadata).
//! * **Steerable runs** ([`server`]): `run_start`/`run_step` advance a
//!   live simulation event by event; `run_checkpoint`/`run_resume` use
//!   the engine's replay-based
//!   [`Engine::snapshot`](cenju4_protocol::Engine::snapshot) seam, so a
//!   client can checkpoint, ask a side question, and continue — resumed
//!   runs are bit-identical to uninterrupted ones.
//! * **Determinism end to end**: every response is a pure function of
//!   the request stream, which is what lets the declarative scenario
//!   harness (`tests/serve_scenarios.rs`) pin whole response lines.

pub mod cache;
pub mod pool;
pub mod proto;
pub mod server;

pub use cache::{Claim, Counters, ResultCache};
pub use pool::ThreadPool;
pub use proto::{Cmd, Query, Request, SimKey, WorkloadSpec};
pub use server::{Reply, Server};
