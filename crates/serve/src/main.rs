//! The `cenju4-serve` binary: line-delimited JSON requests on
//! stdin/stdout (default) or a TCP listener (`--tcp ADDR`).
//!
//! ```text
//! cenju4-serve                     # serve stdin/stdout
//! cenju4-serve --tcp 127.0.0.1:0  # serve TCP; prints the bound address
//! cenju4-serve --workers 8        # pool width (default 4)
//! ```

use cenju4_serve::Server;
use std::io::{BufRead, Write};
use std::sync::Arc;

fn main() {
    let mut tcp: Option<String> = None;
    let mut workers = 4usize;
    let mut args = std::env::args().skip(1);
    while let Some(a) = args.next() {
        match a.as_str() {
            "--tcp" => {
                tcp = Some(
                    args.next()
                        .unwrap_or_else(|| usage("--tcp needs an address")),
                )
            }
            "--workers" => {
                workers = args
                    .next()
                    .and_then(|w| w.parse().ok())
                    .unwrap_or_else(|| usage("--workers needs a number"))
            }
            "--help" | "-h" => usage(""),
            other => usage(&format!("unknown flag {other:?}")),
        }
    }
    let server = Arc::new(Server::new(workers));
    match tcp {
        Some(addr) => {
            let listener = std::net::TcpListener::bind(&addr)
                .unwrap_or_else(|e| usage(&format!("cannot bind {addr}: {e}")));
            // Print the bound address (meaningful with port 0) so
            // scripts can connect.
            println!("listening {}", listener.local_addr().expect("bound"));
            let _ = std::io::stdout().flush();
            if let Err(e) = server.serve_tcp(listener) {
                eprintln!("cenju4-serve: accept failed: {e}");
                std::process::exit(1);
            }
        }
        None => {
            let stdin = std::io::stdin();
            let stdout = std::io::stdout();
            for line in stdin.lock().lines() {
                let Ok(line) = line else { break };
                if line.trim().is_empty() {
                    continue;
                }
                let reply = server.handle_full(&line);
                {
                    let mut out = stdout.lock();
                    if writeln!(out, "{}", reply.line).is_err() {
                        break;
                    }
                    let _ = out.flush();
                }
                if reply.shutdown {
                    break;
                }
            }
        }
    }
}

fn usage(err: &str) -> ! {
    if !err.is_empty() {
        eprintln!("cenju4-serve: {err}");
    }
    eprintln!("usage: cenju4-serve [--tcp ADDR] [--workers N]");
    std::process::exit(if err.is_empty() { 0 } else { 2 });
}
