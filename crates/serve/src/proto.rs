//! The line-delimited JSON request protocol.
//!
//! One request per line in, one response per line out. Requests carry a
//! client-chosen `id` that is echoed on the response, so clients may
//! pipeline. Responses are either
//! `{"id":N,"ok":true,"result":<object>}` or
//! `{"id":N,"ok":false,"error":"<message>"}`.
//!
//! Everything in a response is a pure function of the request — no
//! wall-clock, no randomness, no cache metadata — so a response served
//! from the result cache is byte-identical to one computed fresh, and
//! the declarative scenario harness can pin whole response lines.

use cenju4_des::Duration;
use cenju4_directory::DirectoryId;
use cenju4_obs::json::{self, Json};
use cenju4_protocol::ProtocolId;
use cenju4_sim::{ConfigError, SystemConfig};
use cenju4_workloads::{AppKind, Variant};

/// A parsed request line.
#[derive(Clone, Debug)]
pub struct Request {
    /// Client-chosen correlation id, echoed on the response.
    pub id: u64,
    /// The command.
    pub cmd: Cmd,
}

/// Every command the service understands.
#[derive(Clone, Debug)]
pub enum Cmd {
    /// Liveness probe.
    Ping,
    /// Canonical fingerprint of a configuration, without simulating.
    Fingerprint(Box<SystemConfig>),
    /// One what-if query: simulate (or serve from cache) and report.
    Simulate(Query),
    /// A batch of what-if queries fanned across the worker pool;
    /// identical in-flight queries coalesce onto one simulation.
    Batch(Vec<Query>),
    /// Deterministic service counters.
    Stats,
    /// Start a live (steerable) run.
    RunStart(Query),
    /// Pump a live run by up to `steps` engine events.
    RunStep {
        /// The run id from `run_start`.
        run: u64,
        /// Maximum events to process.
        steps: u64,
    },
    /// Checkpoint a live run.
    RunCheckpoint {
        /// The run id.
        run: u64,
    },
    /// Rebuild a run from a checkpoint (bit-identical to the original).
    RunResume {
        /// The snapshot id from `run_checkpoint`.
        snapshot: u64,
    },
    /// The finished run's report.
    RunResult {
        /// The run id.
        run: u64,
    },
    /// Discard a live run.
    RunDrop {
        /// The run id.
        run: u64,
    },
    /// Close this client's session (and, on stdio, stop the server).
    Shutdown,
}

/// A what-if query: a machine configuration plus a workload to predict.
#[derive(Clone, Debug)]
pub struct Query {
    /// The machine.
    pub cfg: SystemConfig,
    /// The workload.
    pub workload: WorkloadSpec,
}

/// Which workload to run on the configured machine.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct WorkloadSpec {
    /// One of the paper's four NPB kernels.
    pub app: AppKind,
    /// Program variant (seq / mpi / dsm1 / dsm2).
    pub variant: Variant,
    /// Partitioned block mapping (the paper's optimized placement).
    pub mapping: bool,
    /// Problem-size multiplier.
    pub scale: f64,
}

/// The cache/coalescing key of a query: the canonical config fingerprint
/// plus the workload knobs (scale keyed by its exact bits).
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub struct SimKey {
    /// [`SystemConfig::fingerprint`].
    pub cfg: u64,
    /// The kernel.
    pub app: AppKind,
    /// The variant.
    pub variant: Variant,
    /// The mapping flag.
    pub mapping: bool,
    /// `scale.to_bits()`.
    pub scale_bits: u64,
}

impl Query {
    /// The dedup/cache key for this query.
    pub fn key(&self) -> SimKey {
        SimKey {
            cfg: self.cfg.fingerprint(),
            app: self.workload.app,
            variant: self.workload.variant,
            mapping: self.workload.mapping,
            scale_bits: self.workload.scale.to_bits(),
        }
    }
}

/// Parses one request line. On failure the error carries the request id
/// when one could be extracted (0 otherwise), so the response still
/// correlates.
pub fn parse_request(line: &str) -> Result<Request, (u64, String)> {
    let v = json::parse(line).map_err(|e| (0, format!("malformed JSON: {e}")))?;
    let id = v.get("id").and_then(Json::as_u64).unwrap_or(0);
    let fail = |msg: String| (id, msg);
    let cmd = v
        .get("cmd")
        .and_then(Json::as_str)
        .ok_or_else(|| fail("missing \"cmd\"".into()))?;
    let cmd = match cmd {
        "ping" => Cmd::Ping,
        "fingerprint" => Cmd::Fingerprint(Box::new(parse_config(&v).map_err(fail)?)),
        "simulate" => Cmd::Simulate(parse_query(&v).map_err(fail)?),
        "batch" => {
            let reqs = v
                .get("queries")
                .and_then(Json::as_arr)
                .ok_or_else(|| fail("batch needs a \"queries\" array".into()))?;
            let queries = reqs
                .iter()
                .map(parse_query)
                .collect::<Result<Vec<_>, _>>()
                .map_err(fail)?;
            if queries.is_empty() {
                return Err((id, "batch needs at least one query".into()));
            }
            Cmd::Batch(queries)
        }
        "stats" => Cmd::Stats,
        "run_start" => Cmd::RunStart(parse_query(&v).map_err(fail)?),
        "run_step" => Cmd::RunStep {
            run: field_u64(&v, "run").map_err(fail)?,
            steps: field_u64(&v, "steps").map_err(fail)?,
        },
        "run_checkpoint" => Cmd::RunCheckpoint {
            run: field_u64(&v, "run").map_err(fail)?,
        },
        "run_resume" => Cmd::RunResume {
            snapshot: field_u64(&v, "snapshot").map_err(fail)?,
        },
        "run_result" => Cmd::RunResult {
            run: field_u64(&v, "run").map_err(fail)?,
        },
        "run_drop" => Cmd::RunDrop {
            run: field_u64(&v, "run").map_err(fail)?,
        },
        "shutdown" => Cmd::Shutdown,
        other => return Err((id, format!("unknown command {other:?}"))),
    };
    Ok(Request { id, cmd })
}

fn field_u64(v: &Json, key: &str) -> Result<u64, String> {
    v.get(key)
        .and_then(Json::as_u64)
        .ok_or_else(|| format!("missing or non-integer \"{key}\""))
}

/// Parses the request's `config` object into a validated [`SystemConfig`].
fn parse_config(v: &Json) -> Result<SystemConfig, String> {
    let c = v.get("config").ok_or("missing \"config\"")?;
    let nodes = c
        .get("nodes")
        .and_then(Json::as_u64)
        .ok_or("config needs integer \"nodes\"")?;
    let nodes = u16::try_from(nodes).map_err(|_| format!("nodes {nodes} out of range"))?;
    let mut b = SystemConfig::builder(nodes);
    if let Some(name) = c.get("protocol").map(|p| p.as_str().unwrap_or_default()) {
        let id = ProtocolId::parse(name).ok_or_else(|| format!("unknown protocol {name:?}"))?;
        b = b.protocol(id);
    }
    if let Some(name) = c.get("directory").map(|d| d.as_str().unwrap_or_default()) {
        let id = DirectoryId::parse(name).ok_or_else(|| format!("unknown directory {name:?}"))?;
        b = b.directory(id);
    }
    match c.get("kind").map(|k| k.as_str().unwrap_or_default()) {
        None | Some("queuing") => {}
        Some("nack") => b = b.nack_protocol(),
        Some(other) => return Err(format!("unknown protocol kind {other:?}")),
    }
    if let Some(Json::Bool(false)) = c.get("multicast") {
        b = b.without_multicast();
    }
    if let Some(ns) = c.get("mpi_latency_ns").and_then(Json::as_u64) {
        b = b.mpi_latency(Duration::from_ns(ns));
    }
    if let Some(bw) = c.get("mpi_bytes_per_us").and_then(Json::as_u64) {
        b = b.mpi_bandwidth(bw);
    }
    if let Some(w) = c.get("workers").and_then(Json::as_u64) {
        b = b.workers(w as usize);
    }
    b.build()
        .map_err(|e: ConfigError| format!("bad config: {e}"))
}

fn parse_workload(v: &Json) -> Result<WorkloadSpec, String> {
    let w = v.get("workload").ok_or("missing \"workload\"")?;
    let app = match w.get("app").and_then(Json::as_str) {
        Some(name) => AppKind::ALL
            .into_iter()
            .find(|a| a.name().eq_ignore_ascii_case(name))
            .ok_or_else(|| format!("unknown app {name:?} (BT, CG, FT, SP)"))?,
        None => return Err("workload needs string \"app\"".into()),
    };
    let variant = match w.get("variant").and_then(Json::as_str).unwrap_or("dsm2") {
        "seq" => Variant::Seq,
        "mpi" => Variant::Mpi,
        "dsm1" | "dsm(1)" => Variant::Dsm1,
        "dsm2" | "dsm(2)" => Variant::Dsm2,
        other => return Err(format!("unknown variant {other:?} (seq, mpi, dsm1, dsm2)")),
    };
    let mapping = !matches!(w.get("mapping"), Some(Json::Bool(false)));
    let scale = w.get("scale").and_then(Json::as_f64).unwrap_or(1.0);
    if !(scale.is_finite() && scale > 0.0) {
        return Err(format!("scale must be finite and positive, got {scale}"));
    }
    Ok(WorkloadSpec {
        app,
        variant,
        mapping,
        scale,
    })
}

fn parse_query(v: &Json) -> Result<Query, String> {
    Ok(Query {
        cfg: parse_config(v)?,
        workload: parse_workload(v)?,
    })
}

/// Wraps a result object into a success line.
pub fn ok_line(id: u64, result: &str) -> String {
    format!("{{\"id\":{id},\"ok\":true,\"result\":{result}}}")
}

/// Wraps an error message into a failure line.
pub fn err_line(id: u64, msg: &str) -> String {
    format!("{{\"id\":{id},\"ok\":false,\"error\":\"{}\"}}", esc(msg))
}

/// Escapes a string for embedding in a JSON string literal.
pub fn esc(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}
