//! Result cache with in-flight coalescing.
//!
//! Every simulate query is keyed by its [`SimKey`] (canonical config
//! fingerprint + workload knobs). The first request for a key claims an
//! `InFlight` slot and runs the simulation; concurrent requests for the
//! same key park on a condvar and receive the very same result string;
//! later requests hit the `Done` slot. The claim is an atomic
//! check-and-insert under one mutex, so **exactly one** simulation runs
//! per distinct key at any concurrency — the `sims` counter equals the
//! number of distinct keys served, which the stress test pins exactly.
//!
//! A claimed key must always resolve: the owner publishes either
//! [`ResultCache::fill`] (success) or [`ResultCache::fail`] (error —
//! including a panicking simulation, via the claim guard in
//! `server::simulate`). The simulator is deterministic, so a failure is
//! cached like a success and every later request for that key receives
//! the same error without re-running; an `InFlight` slot can therefore
//! never outlive its owner, and waiters can never wedge.

use crate::proto::SimKey;
use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Condvar, Mutex};

/// Deterministic service counters. `hits` and `coalesced` individually
/// depend on timing (a duplicate arriving after completion is a hit,
/// before is a coalesce), but their sum — and `sims` — are exact at any
/// thread count.
#[derive(Debug, Default)]
pub struct Counters {
    /// Requests handled (every command).
    pub requests: AtomicU64,
    /// Simulations actually run (== distinct keys served).
    pub sims: AtomicU64,
    /// Queries served from a completed cache entry.
    pub hits: AtomicU64,
    /// Queries that coalesced onto an in-flight simulation.
    pub coalesced: AtomicU64,
    /// Checkpoints taken.
    pub snapshots: AtomicU64,
    /// Live runs started (including resumes).
    pub runs: AtomicU64,
}

impl Counters {
    /// Queries that did not cost a simulation: cache hits + coalesced.
    /// Exact at any thread count.
    pub fn deduped(&self) -> u64 {
        self.hits.load(Ordering::SeqCst) + self.coalesced.load(Ordering::SeqCst)
    }
}

enum Slot {
    /// Claimed: a worker is simulating this key right now.
    InFlight,
    /// The finished result line body, shared by every response.
    Done(Arc<String>),
    /// The simulation failed; the error message, shared likewise.
    Failed(Arc<String>),
}

/// The dedup/result cache.
#[derive(Default)]
pub struct ResultCache {
    slots: Mutex<HashMap<SimKey, Slot>>,
    ready: Condvar,
}

/// What [`ResultCache::claim`] decided.
pub enum Claim {
    /// The caller owns the key: run the simulation, then publish with
    /// [`ResultCache::fill`] or [`ResultCache::fail`].
    Run,
    /// Someone else already computed (or is computing) it.
    Served(Arc<String>),
    /// Someone else already tried it and it failed; the cached error.
    Failed(Arc<String>),
}

impl ResultCache {
    /// Atomically claims `key`, or waits for / returns the existing
    /// result. Increments the matching counter on `counters`.
    pub fn claim(&self, key: SimKey, counters: &Counters) -> Claim {
        let mut slots = self.slots.lock().unwrap();
        match slots.get(&key) {
            None => {
                slots.insert(key, Slot::InFlight);
                counters.sims.fetch_add(1, Ordering::SeqCst);
                Claim::Run
            }
            Some(Slot::Done(r)) => {
                counters.hits.fetch_add(1, Ordering::SeqCst);
                Claim::Served(Arc::clone(r))
            }
            Some(Slot::Failed(e)) => {
                counters.hits.fetch_add(1, Ordering::SeqCst);
                Claim::Failed(Arc::clone(e))
            }
            Some(Slot::InFlight) => {
                counters.coalesced.fetch_add(1, Ordering::SeqCst);
                loop {
                    slots = self.ready.wait(slots).unwrap();
                    match slots.get(&key) {
                        Some(Slot::Done(r)) => return Claim::Served(Arc::clone(r)),
                        Some(Slot::Failed(e)) => return Claim::Failed(Arc::clone(e)),
                        Some(Slot::InFlight) | None => {}
                    }
                }
            }
        }
    }

    /// Publishes the result for a claimed key and wakes the coalesced
    /// waiters.
    pub fn fill(&self, key: SimKey, result: String) -> Arc<String> {
        let result = Arc::new(result);
        let mut slots = self.slots.lock().unwrap();
        slots.insert(key, Slot::Done(Arc::clone(&result)));
        self.ready.notify_all();
        result
    }

    /// Publishes a failure for a claimed key and wakes the coalesced
    /// waiters. The error is cached: the simulator is deterministic, so
    /// retrying the same key would fail the same way.
    pub fn fail(&self, key: SimKey, error: String) -> Arc<String> {
        let error = Arc::new(error);
        let mut slots = self.slots.lock().unwrap();
        slots.insert(key, Slot::Failed(Arc::clone(&error)));
        self.ready.notify_all();
        error
    }

    /// Number of completed entries (test observability).
    pub fn len(&self) -> usize {
        self.slots
            .lock()
            .unwrap()
            .values()
            .filter(|s| matches!(s, Slot::Done(_)))
            .count()
    }

    /// Whether the cache holds no completed entries.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cenju4_workloads::{AppKind, Variant};
    use std::sync::atomic::Ordering;

    fn key() -> SimKey {
        SimKey {
            cfg: 0xC0FFEE,
            app: AppKind::Cg,
            variant: Variant::Dsm2,
            mapping: false,
            scale_bits: 1.0f64.to_bits(),
        }
    }

    /// A failed claim must resolve parked waiters and be served to
    /// later claimants — an `InFlight` slot never outlives its owner.
    #[test]
    fn failure_wakes_waiters_and_is_cached() {
        let cache = Arc::new(ResultCache::default());
        let counters = Arc::new(Counters::default());
        assert!(matches!(cache.claim(key(), &counters), Claim::Run));

        // Park a waiter on the in-flight slot, then fail the claim.
        let waiter = {
            let (cache, counters) = (Arc::clone(&cache), Arc::clone(&counters));
            std::thread::spawn(move || cache.claim(key(), &counters))
        };
        while counters.coalesced.load(Ordering::SeqCst) == 0 {
            std::thread::yield_now();
        }
        cache.fail(key(), "boom".into());

        match waiter.join().expect("waiter thread") {
            Claim::Failed(e) => assert_eq!(*e, "boom"),
            _ => panic!("waiter must see the failure"),
        }
        // A later claimant is served the cached error without a re-run.
        match cache.claim(key(), &counters) {
            Claim::Failed(e) => assert_eq!(*e, "boom"),
            _ => panic!("failure must be cached"),
        }
        assert_eq!(counters.sims.load(Ordering::SeqCst), 1);
        assert_eq!(counters.deduped(), 2);
        // Failed slots are not "completed results".
        assert!(cache.is_empty());
    }
}
