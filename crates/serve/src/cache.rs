//! Result cache with in-flight coalescing.
//!
//! Every simulate query is keyed by its [`SimKey`] (canonical config
//! fingerprint + workload knobs). The first request for a key claims an
//! `InFlight` slot and runs the simulation; concurrent requests for the
//! same key park on a condvar and receive the very same result string;
//! later requests hit the `Done` slot. The claim is an atomic
//! check-and-insert under one mutex, so **exactly one** simulation runs
//! per distinct key at any concurrency — the `sims` counter equals the
//! number of distinct keys served, which the stress test pins exactly.

use crate::proto::SimKey;
use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Condvar, Mutex};

/// Deterministic service counters. `hits` and `coalesced` individually
/// depend on timing (a duplicate arriving after completion is a hit,
/// before is a coalesce), but their sum — and `sims` — are exact at any
/// thread count.
#[derive(Debug, Default)]
pub struct Counters {
    /// Requests handled (every command).
    pub requests: AtomicU64,
    /// Simulations actually run (== distinct keys served).
    pub sims: AtomicU64,
    /// Queries served from a completed cache entry.
    pub hits: AtomicU64,
    /// Queries that coalesced onto an in-flight simulation.
    pub coalesced: AtomicU64,
    /// Checkpoints taken.
    pub snapshots: AtomicU64,
    /// Live runs started (including resumes).
    pub runs: AtomicU64,
}

impl Counters {
    /// Queries that did not cost a simulation: cache hits + coalesced.
    /// Exact at any thread count.
    pub fn deduped(&self) -> u64 {
        self.hits.load(Ordering::SeqCst) + self.coalesced.load(Ordering::SeqCst)
    }
}

enum Slot {
    /// Claimed: a worker is simulating this key right now.
    InFlight,
    /// The finished result line body, shared by every response.
    Done(Arc<String>),
}

/// The dedup/result cache.
#[derive(Default)]
pub struct ResultCache {
    slots: Mutex<HashMap<SimKey, Slot>>,
    ready: Condvar,
}

/// What [`ResultCache::claim`] decided.
pub enum Claim {
    /// The caller owns the key: run the simulation, then
    /// [`ResultCache::fill`].
    Run,
    /// Someone else already computed (or is computing) it.
    Served(Arc<String>),
}

impl ResultCache {
    /// Atomically claims `key`, or waits for / returns the existing
    /// result. Increments the matching counter on `counters`.
    pub fn claim(&self, key: SimKey, counters: &Counters) -> Claim {
        let mut slots = self.slots.lock().unwrap();
        match slots.get(&key) {
            None => {
                slots.insert(key, Slot::InFlight);
                counters.sims.fetch_add(1, Ordering::SeqCst);
                Claim::Run
            }
            Some(Slot::Done(r)) => {
                counters.hits.fetch_add(1, Ordering::SeqCst);
                Claim::Served(Arc::clone(r))
            }
            Some(Slot::InFlight) => {
                counters.coalesced.fetch_add(1, Ordering::SeqCst);
                loop {
                    slots = self.ready.wait(slots).unwrap();
                    if let Some(Slot::Done(r)) = slots.get(&key) {
                        return Claim::Served(Arc::clone(r));
                    }
                }
            }
        }
    }

    /// Publishes the result for a claimed key and wakes the coalesced
    /// waiters.
    pub fn fill(&self, key: SimKey, result: String) -> Arc<String> {
        let result = Arc::new(result);
        let mut slots = self.slots.lock().unwrap();
        slots.insert(key, Slot::Done(Arc::clone(&result)));
        self.ready.notify_all();
        result
    }

    /// Number of completed entries (test observability).
    pub fn len(&self) -> usize {
        self.slots
            .lock()
            .unwrap()
            .values()
            .filter(|s| matches!(s, Slot::Done(_)))
            .count()
    }

    /// Whether the cache holds no completed entries.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}
