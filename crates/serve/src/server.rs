//! The request-handling core: one [`Server`] owns the result cache, the
//! live-run actor, and a thread pool for batch query fan-out; each TCP
//! session gets its own thread (sessions are rare, long-lived, and
//! mostly blocked on the socket, so a fixed pool would starve the
//! (N+1)-th client). `handle` maps one request line to one response
//! line; the stdio and TCP front ends in `main.rs`, the scenario
//! harness, and the stress test all drive this same entry point.
//!
//! # Threading model
//!
//! The [`Engine`](cenju4_protocol::Engine) is deliberately not `Send`
//! (its hot path uses `Rc` payloads). Stateless queries build, run, and
//! drop an engine inside one worker, so nothing crosses threads. Live
//! (steerable) runs persist between requests, so they live on a
//! dedicated **run-actor thread** that owns every driver and snapshot
//! and is driven over a channel — engines are thread-confined by
//! construction, and the actor serializes run commands, which keeps
//! checkpoint/resume ids deterministic.

use crate::cache::{Claim, Counters, ResultCache};
use crate::pool::ThreadPool;
use crate::proto::{self, Cmd, Query};
use cenju4_obs::summary_to_json;
use cenju4_sim::{AccessClass, Driver, RunReport};
use cenju4_workloads::{runner, AppKind, KernelProgram};
use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::mpsc::{channel, Receiver, Sender};
use std::sync::{Arc, Mutex};

/// Shared (Sync) server state; everything the stateless commands touch.
pub struct State {
    cache: ResultCache,
    /// Service counters (see [`Counters`] for which are exact).
    pub counters: Counters,
    /// Sequential-baseline memo: (app, scale bits) → simulated ns.
    seq_ns: Mutex<HashMap<(AppKind, u64), u64>>,
}

/// The capacity-planning service.
pub struct Server {
    state: Arc<State>,
    /// Channel into the run-actor thread (see module docs).
    runs: Mutex<Sender<RunMsg>>,
    run_actor: Option<std::thread::JoinHandle<()>>,
    /// Fan-out pool for `batch` queries. TCP sessions deliberately do
    /// NOT run here: each gets its own thread (see [`Server::serve_tcp`])
    /// so sessions never starve each other or the batch fan-out.
    queries: ThreadPool,
}

/// One handled request: the response line, and whether the client asked
/// to shut the session down.
pub struct Reply {
    /// The response line (no trailing newline).
    pub line: String,
    /// `true` for the `shutdown` command.
    pub shutdown: bool,
}

/// A live-run command forwarded to the actor, with the request id and a
/// reply channel for the response line.
struct RunMsg {
    id: u64,
    cmd: RunCmd,
    reply: Sender<String>,
}

enum RunCmd {
    Start(Box<Query>),
    Step { run: u64, steps: u64 },
    Checkpoint { run: u64 },
    Resume { snapshot: u64 },
    Result { run: u64 },
    Drop { run: u64 },
}

impl Default for Server {
    fn default() -> Self {
        Server::new(4)
    }
}

impl Server {
    /// A server whose pools run `workers` threads each.
    pub fn new(workers: usize) -> Server {
        let state = Arc::new(State {
            cache: ResultCache::default(),
            counters: Counters::default(),
            seq_ns: Mutex::new(HashMap::new()),
        });
        let (tx, rx) = channel::<RunMsg>();
        let actor_state = Arc::clone(&state);
        let run_actor = std::thread::Builder::new()
            .name("serve-run-actor".into())
            .spawn(move || run_actor(actor_state, rx))
            .expect("spawn run actor");
        Server {
            state,
            runs: Mutex::new(tx),
            run_actor: Some(run_actor),
            queries: ThreadPool::new(workers),
        }
    }

    /// The shared state (counter observability for tests).
    pub fn state(&self) -> &Arc<State> {
        &self.state
    }

    /// Handles one request line, returning one response line.
    pub fn handle(&self, line: &str) -> String {
        self.handle_full(line).line
    }

    /// Handles one request line, also reporting a shutdown request.
    pub fn handle_full(&self, line: &str) -> Reply {
        self.state.counters.requests.fetch_add(1, Ordering::SeqCst);
        let req = match proto::parse_request(line) {
            Ok(req) => req,
            Err((id, msg)) => {
                return Reply {
                    line: proto::err_line(id, &msg),
                    shutdown: false,
                }
            }
        };
        let id = req.id;
        let mut shutdown = false;
        let line = match req.cmd {
            Cmd::Ping => proto::ok_line(id, "{\"pong\":true}"),
            Cmd::Fingerprint(cfg) => proto::ok_line(
                id,
                &format!("{{\"fingerprint\":\"{}\"}}", cfg.fingerprint_hex()),
            ),
            Cmd::Simulate(q) => match simulate(&self.state, &q) {
                Ok(result) => proto::ok_line(id, &result),
                Err(e) => proto::err_line(id, &e),
            },
            Cmd::Batch(queries) => {
                type QueryJob = Box<dyn FnOnce() -> Result<Arc<String>, String> + Send>;
                let jobs: Vec<QueryJob> = queries
                    .into_iter()
                    .map(|q| {
                        let state = Arc::clone(&self.state);
                        // Contain panics inside the job: `map` counts on
                        // one result per job, and the claim guard has
                        // already published the failure to the cache.
                        Box::new(move || {
                            std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
                                simulate(&state, &q)
                            }))
                            .unwrap_or_else(|_| Err("simulation panicked".into()))
                        }) as QueryJob
                    })
                    .collect();
                let results = self.queries.map(jobs);
                let mut body = String::from("{\"results\":[");
                for (i, r) in results.iter().enumerate() {
                    if i > 0 {
                        body.push(',');
                    }
                    match r {
                        Ok(s) => body.push_str(s),
                        Err(e) => body.push_str(&format!("{{\"error\":\"{}\"}}", proto::esc(e))),
                    }
                }
                body.push_str("]}");
                proto::ok_line(id, &body)
            }
            Cmd::Stats => {
                let c = &self.state.counters;
                proto::ok_line(
                    id,
                    &format!(
                        "{{\"requests\":{},\"sims\":{},\"deduped\":{},\"snapshots\":{},\"runs\":{}}}",
                        c.requests.load(Ordering::SeqCst),
                        c.sims.load(Ordering::SeqCst),
                        c.deduped(),
                        c.snapshots.load(Ordering::SeqCst),
                        c.runs.load(Ordering::SeqCst),
                    ),
                )
            }
            Cmd::RunStart(q) => self.run_call(id, RunCmd::Start(Box::new(q))),
            Cmd::RunStep { run, steps } => self.run_call(id, RunCmd::Step { run, steps }),
            Cmd::RunCheckpoint { run } => self.run_call(id, RunCmd::Checkpoint { run }),
            Cmd::RunResume { snapshot } => self.run_call(id, RunCmd::Resume { snapshot }),
            Cmd::RunResult { run } => self.run_call(id, RunCmd::Result { run }),
            Cmd::RunDrop { run } => self.run_call(id, RunCmd::Drop { run }),
            Cmd::Shutdown => {
                shutdown = true;
                proto::ok_line(id, "{\"bye\":true}")
            }
        };
        Reply { line, shutdown }
    }

    /// Round-trips one live-run command through the actor.
    fn run_call(&self, id: u64, cmd: RunCmd) -> String {
        let (reply, rx) = channel();
        let sent = self
            .runs
            .lock()
            .unwrap()
            .send(RunMsg { id, cmd, reply })
            .is_ok();
        if !sent {
            return proto::err_line(id, "run actor is gone");
        }
        rx.recv()
            .unwrap_or_else(|_| proto::err_line(id, "run actor dropped the request"))
    }

    /// Serves TCP clients until the listener errors. Each connection
    /// gets a dedicated session thread — sessions block on the socket
    /// for most of their life, so pooling them would leave the
    /// (pool+1)-th client accepted but never serviced. The thread exits
    /// with its connection; `shutdown` ends that session only.
    pub fn serve_tcp(self: &Arc<Self>, listener: std::net::TcpListener) -> std::io::Result<()> {
        use std::io::{BufRead, BufReader, Write};
        loop {
            let (stream, _) = listener.accept()?;
            let server = Arc::clone(self);
            let session = move || {
                let reader = BufReader::new(match stream.try_clone() {
                    Ok(s) => s,
                    Err(_) => return,
                });
                let mut writer = stream;
                for line in reader.lines() {
                    let Ok(line) = line else { break };
                    if line.trim().is_empty() {
                        continue;
                    }
                    let reply = server.handle_full(&line);
                    if writeln!(writer, "{}", reply.line).is_err() || reply.shutdown {
                        break;
                    }
                }
            };
            if std::thread::Builder::new()
                .name("serve-session".into())
                .spawn(session)
                .is_err()
            {
                // Out of threads: drop the connection rather than hang
                // the accept loop; the client sees EOF and can retry.
                continue;
            }
        }
    }
}

impl Drop for Server {
    fn drop(&mut self) {
        // Replace the sender with a dead channel so the actor's recv
        // errors out and the thread exits, then join it.
        let (dead, _) = channel();
        *self.runs.lock().unwrap() = dead;
        if let Some(h) = self.run_actor.take() {
            let _ = h.join();
        }
    }
}

impl State {
    /// The sequential baseline for the query's app/scale, memoized.
    fn seq_time(&self, q: &Query) -> Result<u64, String> {
        let key = (q.workload.app, q.workload.scale.to_bits());
        if let Some(&ns) = self.seq_ns.lock().unwrap().get(&key) {
            return Ok(ns);
        }
        let ns = runner::sequential_time(q.workload.app, q.workload.scale)
            .map_err(|e| format!("sequential baseline failed: {e}"))?;
        self.seq_ns.lock().unwrap().insert(key, ns);
        Ok(ns)
    }
}

// ---------------------------------------------------------------------
// The run actor: owns every live driver and stored snapshot.
// ---------------------------------------------------------------------

/// A live run: a driver mid-flight, or its finished report.
enum RunState {
    Live(Box<Driver<KernelProgram>>),
    Done { steps: u64, result: String },
}

struct LiveRun {
    query: Query,
    state: RunState,
}

/// A stored checkpoint: the query that produced the run plus the
/// engine's replay snapshot.
struct StoredSnapshot {
    query: Query,
    snap: cenju4_protocol::EngineSnapshot,
}

fn build_program(q: &Query) -> KernelProgram {
    KernelProgram::build(
        q.workload.app,
        q.workload.variant,
        q.workload.mapping,
        &q.cfg,
        q.workload.scale,
    )
}

fn run_actor(state: Arc<State>, rx: Receiver<RunMsg>) {
    let mut runs: HashMap<u64, LiveRun> = HashMap::new();
    let mut snaps: HashMap<u64, StoredSnapshot> = HashMap::new();
    let next_run = AtomicU64::new(1);
    let next_snap = AtomicU64::new(1);
    while let Ok(RunMsg { id, cmd, reply }) = rx.recv() {
        let line = match cmd {
            RunCmd::Start(query) => {
                let query = *query;
                let mut driver = Driver::new(&query.cfg, build_program(&query));
                driver.start();
                state.counters.runs.fetch_add(1, Ordering::SeqCst);
                let run = next_run.fetch_add(1, Ordering::SeqCst);
                runs.insert(
                    run,
                    LiveRun {
                        query,
                        state: RunState::Live(Box::new(driver)),
                    },
                );
                proto::ok_line(id, &format!("{{\"run\":{run},\"steps\":0,\"done\":false}}"))
            }
            RunCmd::Step { run, steps } => match runs.get_mut(&run) {
                None => proto::err_line(id, &format!("unknown run {run}")),
                Some(live) => step_run(&state, run, live, id, steps),
            },
            RunCmd::Checkpoint { run } => match runs.get(&run) {
                None => proto::err_line(id, &format!("unknown run {run}")),
                Some(LiveRun {
                    state: RunState::Done { .. },
                    ..
                }) => proto::err_line(id, &format!("run {run} already finished")),
                Some(LiveRun {
                    state: RunState::Live(driver),
                    query,
                }) => match driver.snapshot() {
                    Ok(snap) => {
                        let steps = snap.steps;
                        let sid = next_snap.fetch_add(1, Ordering::SeqCst);
                        state.counters.snapshots.fetch_add(1, Ordering::SeqCst);
                        snaps.insert(
                            sid,
                            StoredSnapshot {
                                query: query.clone(),
                                snap,
                            },
                        );
                        proto::ok_line(
                            id,
                            &format!("{{\"snapshot\":{sid},\"run\":{run},\"steps\":{steps}}}"),
                        )
                    }
                    Err(e) => proto::err_line(id, &format!("cannot checkpoint: {e}")),
                },
            },
            RunCmd::Resume { snapshot } => match snaps.get(&snapshot) {
                None => proto::err_line(id, &format!("unknown snapshot {snapshot}")),
                Some(stored) => {
                    let q = stored.query.clone();
                    match Driver::resume(&q.cfg, build_program(&q), &stored.snap) {
                        Ok(driver) => {
                            state.counters.runs.fetch_add(1, Ordering::SeqCst);
                            let run = next_run.fetch_add(1, Ordering::SeqCst);
                            let steps = driver.engine().steps();
                            runs.insert(
                                run,
                                LiveRun {
                                    query: q,
                                    state: RunState::Live(Box::new(driver)),
                                },
                            );
                            proto::ok_line(
                                id,
                                &format!("{{\"run\":{run},\"steps\":{steps},\"done\":false}}"),
                            )
                        }
                        Err(e) => proto::err_line(id, &format!("cannot resume: {e}")),
                    }
                }
            },
            RunCmd::Result { run } => match runs.get(&run) {
                None => proto::err_line(id, &format!("unknown run {run}")),
                Some(LiveRun {
                    state: RunState::Live(_),
                    ..
                }) => proto::err_line(id, &format!("run {run} not finished (keep stepping)")),
                Some(LiveRun {
                    state: RunState::Done { result, .. },
                    ..
                }) => proto::ok_line(id, result),
            },
            RunCmd::Drop { run } => {
                if runs.remove(&run).is_some() {
                    proto::ok_line(id, &format!("{{\"dropped\":{run}}}"))
                } else {
                    proto::err_line(id, &format!("unknown run {run}"))
                }
            }
        };
        // A dropped reply receiver just means the client went away.
        let _ = reply.send(line);
    }
}

/// Pumps a live run by up to `steps` events, finalizing the report at
/// quiescence so every later `run_result` returns the identical line.
fn step_run(state: &Arc<State>, run: u64, live: &mut LiveRun, id: u64, steps: u64) -> String {
    let RunState::Live(driver) = &mut live.state else {
        let RunState::Done { steps, .. } = &live.state else {
            unreachable!()
        };
        return proto::ok_line(
            id,
            &format!("{{\"run\":{run},\"steps\":{steps},\"done\":true}}"),
        );
    };
    let mut drained = false;
    for _ in 0..steps {
        if !driver.pump() {
            drained = true;
            break;
        }
    }
    let at = driver.engine().steps();
    if !drained {
        return proto::ok_line(
            id,
            &format!("{{\"run\":{run},\"steps\":{at},\"done\":false}}"),
        );
    }
    // Resolve the sequential baseline *before* consuming the driver: if
    // it fails, the run stays `Live` (the drained driver is untouched)
    // and the client can simply step again to retry. Consuming first
    // would strand the run on an unrecoverable empty report.
    let t_seq = match state.seq_time(&live.query) {
        Ok(t) => t,
        Err(e) => return proto::err_line(id, &e),
    };
    let placeholder = RunState::Done {
        steps: at,
        result: String::new(),
    };
    let RunState::Live(driver) = std::mem::replace(&mut live.state, placeholder) else {
        unreachable!()
    };
    let report = driver.finish();
    live.state = RunState::Done {
        steps: at,
        result: result_json(&live.query, &report, t_seq),
    };
    proto::ok_line(
        id,
        &format!("{{\"run\":{run},\"steps\":{at},\"done\":true}}"),
    )
}

// ---------------------------------------------------------------------
// Stateless query execution
// ---------------------------------------------------------------------

/// Clears a claimed `InFlight` slot if the owner never publishes — the
/// unwind path. Without this, a panicking simulation would leave every
/// coalesced waiter (and all future requests for the key) parked on the
/// cache condvar forever.
struct ClaimGuard<'a> {
    cache: &'a ResultCache,
    key: Option<crate::proto::SimKey>,
}

impl<'a> ClaimGuard<'a> {
    fn new(cache: &'a ResultCache, key: crate::proto::SimKey) -> Self {
        ClaimGuard {
            cache,
            key: Some(key),
        }
    }

    /// The owner published (`fill` or `fail`); nothing left to clean up.
    fn disarm(&mut self) {
        self.key = None;
    }
}

impl Drop for ClaimGuard<'_> {
    fn drop(&mut self) {
        if let Some(key) = self.key.take() {
            self.cache.fail(key, "simulation panicked".into());
        }
    }
}

/// Runs (or coalesces / serves from cache) one what-if query. Exactly
/// one simulation runs per distinct [`SimKey`](crate::proto::SimKey) at
/// any concurrency; every caller receives the same `Arc`'d result
/// string, so cached responses are byte-identical to fresh ones.
/// Failures publish to the cache too — every claimed slot resolves, so
/// coalesced waiters can never wedge.
fn simulate(state: &Arc<State>, q: &Query) -> Result<Arc<String>, String> {
    match state.cache.claim(q.key(), &state.counters) {
        Claim::Served(r) => Ok(r),
        Claim::Failed(e) => Err(e.as_ref().clone()),
        Claim::Run => {
            let mut guard = ClaimGuard::new(&state.cache, q.key());
            let outcome = runner::run_workload_on(
                &q.cfg,
                q.workload.app,
                q.workload.variant,
                q.workload.mapping,
                q.workload.scale,
            )
            .map_err(|e| format!("simulation failed: {e}"))
            .and_then(|report| Ok((report, state.seq_time(q)?)));
            guard.disarm();
            match outcome {
                Ok((report, t_seq)) => {
                    Ok(state.cache.fill(q.key(), result_json(q, &report, t_seq)))
                }
                Err(e) => {
                    state.cache.fail(q.key(), e.clone());
                    Err(e)
                }
            }
        }
    }
}

fn class_name(c: AccessClass) -> &'static str {
    match c {
        AccessClass::Private => "private",
        AccessClass::SharedLocal => "shared-local",
        AccessClass::SharedRemote => "shared-remote",
    }
}

/// The predicted-performance result object: identity (fingerprint +
/// workload), end-to-end time and speedup over the sequential baseline,
/// and per-class access counts and latency summaries (the
/// [`MetricsRegistry`](cenju4_obs::MetricsRegistry)-style quantile shape
/// via [`summary_to_json`]). Field order is fixed; equal reports
/// serialize byte-identically — and the object deliberately carries no
/// cache metadata, so cached and fresh responses cannot differ.
fn result_json(q: &Query, report: &RunReport, seq_ns: u64) -> String {
    let total = report.total_time().as_ns();
    let speedup = seq_ns as f64 / (total.max(1)) as f64;
    let mut out = format!(
        "{{\"fingerprint\":\"{}\",\"app\":\"{}\",\"variant\":\"{}\",\"mapping\":{},\"scale\":{},\
         \"nodes\":{},\"total_ns\":{},\"seq_ns\":{},\"speedup\":{:.4},\"miss_ratio\":{:.6},\
         \"sync_fraction\":{:.6}",
        q.cfg.fingerprint_hex(),
        q.workload.app.name(),
        q.workload.variant.name(),
        q.workload.mapping,
        q.workload.scale,
        q.cfg.sys.nodes(),
        total,
        seq_ns,
        speedup,
        report.miss_ratio(),
        report.sync_fraction(),
    );
    out.push_str(",\"accesses\":{");
    for (i, c) in AccessClass::ALL.into_iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push_str(&format!(
            "\"{}\":{{\"total\":{},\"misses\":{}}}",
            class_name(c),
            report.accesses(c),
            report.misses(c)
        ));
    }
    out.push_str("},\"latency\":{");
    for (i, (c, h)) in AccessClass::ALL
        .into_iter()
        .zip(report.latency_hist.iter())
        .enumerate()
    {
        if i > 0 {
            out.push(',');
        }
        out.push_str(&format!(
            "\"{}\":{}",
            class_name(c),
            summary_to_json(&h.summary())
        ));
    }
    out.push_str("}}");
    out
}
