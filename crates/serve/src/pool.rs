//! A minimal fixed-size thread pool over std channels — the workspace
//! is hermetic (no crates.io), so this is the in-repo executor the
//! service runs on. Jobs are boxed closures; `scoped` fan-out joins a
//! batch of jobs and collects results in submission order.

use std::sync::mpsc::{channel, Sender};
use std::sync::{Arc, Mutex};
use std::thread::JoinHandle;

type Job = Box<dyn FnOnce() + Send + 'static>;

/// A fixed pool of worker threads consuming jobs from one shared channel.
pub struct ThreadPool {
    tx: Option<Sender<Job>>,
    workers: Vec<JoinHandle<()>>,
}

impl ThreadPool {
    /// Spawns `workers` threads (at least one).
    pub fn new(workers: usize) -> Self {
        let workers = workers.max(1);
        let (tx, rx) = channel::<Job>();
        let rx = Arc::new(Mutex::new(rx));
        let workers = (0..workers)
            .map(|i| {
                let rx = Arc::clone(&rx);
                std::thread::Builder::new()
                    .name(format!("serve-worker-{i}"))
                    .spawn(move || loop {
                        // Hold the receiver lock only while popping, so
                        // workers drain the queue concurrently.
                        let job = {
                            let rx = rx.lock().unwrap();
                            rx.recv()
                        };
                        match job {
                            // A panicking job must not kill the worker:
                            // the pool would silently shrink until
                            // `submit` itself panics in the caller. The
                            // job owns any cleanup (e.g. the cache claim
                            // guard); here we just survive the unwind.
                            Ok(job) => {
                                let _ = std::panic::catch_unwind(std::panic::AssertUnwindSafe(job));
                            }
                            Err(_) => return, // pool dropped
                        }
                    })
                    .expect("spawn pool worker")
            })
            .collect();
        ThreadPool {
            tx: Some(tx),
            workers,
        }
    }

    /// Submits a fire-and-forget job.
    pub fn submit(&self, job: impl FnOnce() + Send + 'static) {
        self.tx
            .as_ref()
            .expect("pool alive")
            .send(Box::new(job))
            .expect("pool workers alive");
    }

    /// Runs every job on the pool and returns their results in
    /// submission order, blocking until all complete.
    ///
    /// Jobs must not panic: a panicked job produces no `T`, so the
    /// collector would fail. Callers that run fallible work wrap it in
    /// `catch_unwind` and return the error as a value (as `batch` does).
    pub fn map<T: Send + 'static>(
        &self,
        jobs: Vec<Box<dyn FnOnce() -> T + Send + 'static>>,
    ) -> Vec<T> {
        let n = jobs.len();
        let (tx, rx) = channel::<(usize, T)>();
        for (i, job) in jobs.into_iter().enumerate() {
            let tx = tx.clone();
            self.submit(move || {
                let out = job();
                // The receiver outlives every job (we drain below), so a
                // send failure means the collector panicked; nothing
                // useful to do but drop the result.
                let _ = tx.send((i, out));
            });
        }
        drop(tx);
        let mut out: Vec<Option<T>> = (0..n).map(|_| None).collect();
        for _ in 0..n {
            let (i, v) = rx.recv().expect("pool job completed");
            out[i] = Some(v);
        }
        out.into_iter()
            .map(|v| v.expect("every slot filled"))
            .collect()
    }
}

impl Drop for ThreadPool {
    fn drop(&mut self) {
        // Close the channel so workers see Err and exit, then join.
        self.tx.take();
        for w in self.workers.drain(..) {
            let _ = w.join();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicU64, Ordering};

    #[test]
    fn map_preserves_submission_order() {
        let pool = ThreadPool::new(4);
        let jobs: Vec<Box<dyn FnOnce() -> u64 + Send>> = (0..32u64)
            .map(|i| Box::new(move || i * i) as Box<dyn FnOnce() -> u64 + Send>)
            .collect();
        let out = pool.map(jobs);
        assert_eq!(out, (0..32u64).map(|i| i * i).collect::<Vec<_>>());
    }

    #[test]
    fn workers_survive_panicking_jobs() {
        let hits = Arc::new(AtomicU64::new(0));
        {
            let pool = ThreadPool::new(2);
            for _ in 0..4 {
                pool.submit(|| panic!("job panic must not kill the worker"));
            }
            for _ in 0..8 {
                let hits = Arc::clone(&hits);
                pool.submit(move || {
                    hits.fetch_add(1, Ordering::SeqCst);
                });
            }
        } // drop joins; every post-panic job must still have run
        assert_eq!(hits.load(Ordering::SeqCst), 8);
    }

    #[test]
    fn submit_runs_concurrently_and_drop_joins() {
        let hits = Arc::new(AtomicU64::new(0));
        {
            let pool = ThreadPool::new(3);
            for _ in 0..24 {
                let hits = Arc::clone(&hits);
                pool.submit(move || {
                    hits.fetch_add(1, Ordering::SeqCst);
                });
            }
        } // drop joins the workers
        assert_eq!(hits.load(Ordering::SeqCst), 24);
    }
}
